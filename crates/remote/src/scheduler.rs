//! The fault-tolerant coordinator scheduler.
//!
//! One driver thread per configured worker pulls batches of cell keys
//! from a shared queue — batch size = that worker's advertised capacity,
//! so a 16-way daemon claims sixteen cells while a laptop claims one,
//! which is the capacity-weighted partition of the key space (and,
//! unlike a static split, it keeps every worker busy until the queue is
//! empty no matter how wrong the capacities are about real speed).
//!
//! Fault model: a worker may die at any point — refuse the dial, drop
//! mid-batch, claim `Done` while cells are still owed. In every case the
//! cells that worker still owed go back on the queue for the survivors,
//! each re-queue charging that cell's retry budget; a cell that exhausts
//! the budget aborts the run (it is killing workers, not unlucky), and a
//! queue that still holds cells when every driver has exited surfaces as
//! a drained-pool [`BackendError`] naming the worker failures.
//!
//! An idle driver does not exit just because the queue is momentarily
//! empty: while any *other* driver still has cells in flight, those
//! cells may yet be re-queued by a death, so the idle driver **parks**
//! on a condvar and wakes when work reappears (or everything resolves).
//! Without this, a straggler worker dying after the queue drained would
//! strand its cells with healthy, already-departed survivors — the
//! failover guarantee would hold except near the end of a run, which is
//! exactly when deaths are most likely.
//!
//! The scheduler is deliberately transport-free: drivers speak to a
//! [`WorkerLink`], and the [`Dialer`] that produces links is a
//! parameter. [`crate::client::dial`] is the TCP implementation; tests
//! inject in-memory links to pin the failover behaviour without sockets.
//!
//! Determinism: completed reports are keyed by cell key and the final
//! sweep is assembled by the engine's own seeded run
//! ([`Matrix::run_with`]), exactly like the subprocess backend — so
//! *which* worker computed a cell, and in what order, cannot influence a
//! single byte of the result.

use sdiq_core::{
    ArtifactCache, BackendError, CellSink, Matrix, MatrixSpec, RemoteSpec, RunReport, Sweep,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::sync::{Condvar, Mutex};

/// A connected worker, as one driver thread sees it.
pub trait WorkerLink: Send {
    /// The capacity the worker advertised in its `Hello`.
    fn capacity(&self) -> usize;

    /// Submits a batch of cell keys.
    fn submit(&mut self, keys: &[String]) -> io::Result<()>;

    /// Blocks for the next scheduling event (heartbeats are skipped
    /// inside the link, never surfaced).
    fn recv(&mut self) -> io::Result<WorkerEvent>;
}

/// What a worker's stream yields between `submit` calls.
#[derive(Debug)]
pub enum WorkerEvent {
    /// One finished cell (boxed: the report dwarfs the other variant).
    Cell(String, Box<RunReport>),
    /// The submitted batch is fully delivered.
    Done,
}

/// Produces a connected [`WorkerLink`] for one worker address; the spec
/// and fingerprint are what the link will send in its `RunCells` frames.
pub type Dialer = fn(&str, &MatrixSpec, u64) -> io::Result<Box<dyn WorkerLink>>;

/// The work ledger: pending keys plus a count of cells currently in
/// flight on some worker, guarded together so [`State::claim`] can park
/// on one condvar until either changes (see the module docs).
struct WorkState {
    /// Cell keys waiting for a worker.
    queue: VecDeque<String>,
    /// Cells claimed but not yet completed or re-queued.
    in_flight: usize,
    /// Mirror of the fatal flag, kept under this lock so parked
    /// claimers observe it without a second mutex.
    fatal: bool,
}

/// Shared scheduler state. Lock discipline where locks nest:
/// `retries` → `work` → (`completed` | `failures` | `fatal`), and the
/// condvar is always signalled while holding `work` so a claimer cannot
/// miss a wakeup between its check and its wait.
struct State {
    /// Pending/in-flight ledger (see [`WorkState`]).
    work: Mutex<WorkState>,
    /// Wakes parked claimers when the ledger changes.
    work_changed: Condvar,
    /// Per-cell re-queue counts.
    retries: Mutex<HashMap<String, usize>>,
    /// Completed cells.
    completed: Mutex<HashMap<String, RunReport>>,
    /// First unrecoverable failure message (the flag lives in
    /// [`WorkState::fatal`]).
    fatal: Mutex<Option<String>>,
    /// Human-readable record of every worker failure (for the
    /// drained-pool error).
    failures: Mutex<Vec<String>>,
}

impl State {
    fn new(pending: Vec<String>) -> State {
        State {
            work: Mutex::new(WorkState {
                queue: pending.into(),
                in_flight: 0,
                fatal: false,
            }),
            work_changed: Condvar::new(),
            retries: Mutex::new(HashMap::new()),
            completed: Mutex::new(HashMap::new()),
            fatal: Mutex::new(None),
            failures: Mutex::new(Vec::new()),
        }
    }

    fn fatal_is_set(&self) -> bool {
        self.work.lock().expect("scheduler poisoned").fatal
    }

    fn set_fatal(&self, message: String) {
        self.fatal
            .lock()
            .expect("scheduler poisoned")
            .get_or_insert(message);
        let mut work = self.work.lock().expect("scheduler poisoned");
        work.fatal = true;
        // Parked claimers must wake to observe the abort; signalling
        // under the work lock closes the check-then-wait window.
        self.work_changed.notify_all();
    }

    /// Claims up to `capacity` cells, **parking** while the queue is
    /// empty but other drivers still have cells in flight (a death
    /// could hand them back at any moment). Returns an empty batch only
    /// when the run is over for this driver: nothing pending, nothing
    /// in flight anywhere — or the run turned fatal.
    fn claim(&self, capacity: usize) -> Vec<String> {
        let mut work = self.work.lock().expect("scheduler poisoned");
        loop {
            if work.fatal {
                return Vec::new();
            }
            if !work.queue.is_empty() {
                let take = capacity.max(1).min(work.queue.len());
                let batch: Vec<String> = work.queue.drain(..take).collect();
                work.in_flight += batch.len();
                return batch;
            }
            if work.in_flight == 0 {
                return Vec::new();
            }
            work = self.work_changed.wait(work).expect("scheduler poisoned");
        }
    }

    /// Records one finished cell and releases its in-flight slot.
    fn complete(&self, key: String, report: RunReport) {
        self.completed
            .lock()
            .expect("scheduler poisoned")
            .insert(key, report);
        let mut work = self.work.lock().expect("scheduler poisoned");
        work.in_flight -= 1;
        if work.in_flight == 0 {
            // The last in-flight cell resolved cleanly: parked claimers
            // can now conclude the run is over.
            self.work_changed.notify_all();
        }
    }

    /// Returns a dead worker's owed cells to the queue (waking parked
    /// survivors), charging each cell's retry budget; a cell over
    /// budget turns the failure fatal.
    fn requeue(&self, addr: &str, owed: Vec<String>, retry_budget: usize, why: &str) {
        self.failures
            .lock()
            .expect("scheduler poisoned")
            .push(format!("worker {addr}: {why}"));
        eprintln!(
            "remote: worker {addr} failed ({why}); re-queueing {} in-flight cell(s)",
            owed.len()
        );
        let mut retries = self.retries.lock().expect("scheduler poisoned");
        let mut work = self.work.lock().expect("scheduler poisoned");
        work.in_flight -= owed.len();
        for key in owed {
            let count = retries.entry(key.clone()).or_insert(0);
            *count += 1;
            if *count > retry_budget {
                let count = *count;
                drop(work);
                drop(retries);
                self.set_fatal(format!(
                    "cell `{key}` was re-queued {count} times (retry budget \
                     {retry_budget}) — aborting instead of killing more workers"
                ));
                return;
            }
            work.queue.push_back(key);
        }
        self.work_changed.notify_all();
    }
}

/// Runs `matrix`'s missing cells over the remote worker pool and
/// assembles the full sweep (see the module docs for the scheduling and
/// fault model). `dialer` is the transport; production callers go
/// through [`crate::backend`], which plugs in TCP.
pub fn run(
    matrix: &Matrix<'_>,
    spec: &RemoteSpec,
    seed: &HashMap<String, RunReport>,
    sink: Option<&dyn CellSink>,
    dialer: Dialer,
) -> Result<Sweep, BackendError> {
    if spec.workers.is_empty() {
        return Err(BackendError::new(
            "remote backend needs at least one worker address",
        ));
    }
    let fingerprint = sdiq_core::matrix_fingerprint(&matrix.cell_keys());
    let expected: HashSet<String> = matrix.cell_keys().into_iter().collect();
    let pending = matrix.missing_cell_keys(seed);
    let state = State::new(pending);

    std::thread::scope(|scope| {
        for addr in &spec.workers {
            let state = &state;
            let expected = &expected;
            scope.spawn(move || {
                drive_worker(
                    addr,
                    &spec.spec,
                    fingerprint,
                    spec.retry_budget,
                    state,
                    expected,
                    sink,
                    dialer,
                );
            });
        }
    });

    if let Some(fatal) = state.fatal.into_inner().expect("scheduler poisoned") {
        return Err(BackendError::new(fatal));
    }
    let completed = state.completed.into_inner().expect("scheduler poisoned");
    let mut merged = seed.clone();
    merged.extend(completed);
    let missing = matrix.missing_cells(&merged);
    if missing > 0 {
        let failures = state.failures.into_inner().expect("scheduler poisoned");
        let detail = if failures.is_empty() {
            "no worker reported an error".to_string()
        } else {
            failures.join("; ")
        };
        return Err(BackendError::new(format!(
            "remote worker pool drained with {missing} cell(s) unfinished — {detail}"
        )));
    }
    // Assembly only: every cell is seeded, nothing is recomputed, and the
    // sweep is bit-identical to a serial run.
    Ok(matrix.run_with(&ArtifactCache::new(), &merged))
}

/// One worker's driver loop: dial, then claim/submit/receive until the
/// queue is empty, the worker dies, or the run turns fatal.
#[allow(clippy::too_many_arguments)] // driver wiring, called from one place
fn drive_worker(
    addr: &str,
    spec: &MatrixSpec,
    fingerprint: u64,
    retry_budget: usize,
    state: &State,
    expected: &HashSet<String>,
    sink: Option<&dyn CellSink>,
    dialer: Dialer,
) {
    let mut link = match dialer(addr, spec, fingerprint) {
        Ok(link) => link,
        Err(error) => {
            // Nothing was claimed yet, so nothing re-queues; the worker
            // simply never joins the pool.
            state
                .failures
                .lock()
                .expect("scheduler poisoned")
                .push(format!("worker {addr}: dial failed: {error}"));
            eprintln!("remote: worker {addr}: dial failed: {error}");
            return;
        }
    };
    let capacity = link.capacity().max(1);
    loop {
        if state.fatal_is_set() {
            return;
        }
        let batch = state.claim(capacity);
        if batch.is_empty() {
            // Nothing pending and nothing in flight anywhere (or the run
            // turned fatal): release the worker (drop closes the link).
            return;
        }
        if let Err(error) = link.submit(&batch) {
            state.requeue(
                addr,
                batch,
                retry_budget,
                &format!("submit failed: {error}"),
            );
            return;
        }
        let mut outstanding: HashSet<String> = batch.into_iter().collect();
        loop {
            match link.recv() {
                Ok(WorkerEvent::Cell(key, report)) => {
                    if !outstanding.remove(&key) {
                        // A key we did not ask this worker for: either
                        // foreign (configurations disagree) or duplicated.
                        // Both are protocol violations, and accepting the
                        // report could mask a real divergence — abort.
                        let kind = if expected.contains(&key) {
                            "a cell it was not asked for"
                        } else {
                            "a foreign cell key — worker and coordinator configurations disagree"
                        };
                        state.set_fatal(format!("worker {addr} delivered {kind} (`{key}`)"));
                        return;
                    }
                    if let Some(sink) = sink {
                        sink.cell_complete(&key, &report);
                    }
                    state.complete(key, *report);
                }
                Ok(WorkerEvent::Done) => {
                    if !outstanding.is_empty() {
                        state.requeue(
                            addr,
                            outstanding.into_iter().collect(),
                            retry_budget,
                            "batch reported done with cells still owed",
                        );
                        return;
                    }
                    break; // claim the next batch
                }
                Err(error) => {
                    state.requeue(
                        addr,
                        outstanding.into_iter().collect(),
                        retry_budget,
                        &format!("died mid-batch: {error}"),
                    );
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_core::{cell_key, RemoteSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    fn tiny_spec() -> MatrixSpec {
        MatrixSpec {
            scale: 0.05,
            sweeps: Vec::new(),
            benchmarks: vec!["gzip".to_string(), "mcf".to_string()],
            techniques: vec!["baseline".to_string(), "noop".to_string()],
        }
    }

    /// Precomputed reports for the tiny matrix, shared across tests so
    /// fake workers "compute" cells by lookup.
    fn oracle() -> &'static HashMap<String, RunReport> {
        static ORACLE: OnceLock<HashMap<String, RunReport>> = OnceLock::new();
        ORACLE.get_or_init(|| {
            let spec = tiny_spec();
            let experiment = spec.experiment();
            let matrix = spec.matrix(&experiment).unwrap();
            let sweep = matrix.run();
            matrix.collect_cells(&sweep).into_iter().collect()
        })
    }

    /// An in-memory worker: serves cells from the oracle, with optional
    /// scripted death after a given number of delivered cells and an
    /// optional per-event delay (a deterministic straggler).
    struct FakeLink {
        capacity: usize,
        /// Cells queued by `submit`, not yet delivered.
        pending: VecDeque<String>,
        /// Delivered-cell countdown; reaching zero kills the link.
        die_after: Option<usize>,
        /// `Done` is owed after the last pending cell.
        done_pending: bool,
        /// Delivers this key instead of the first requested one.
        alias_first_to: Option<String>,
        /// Sleep this long at every `recv` (straggler script).
        delay: Option<std::time::Duration>,
        delivered: &'static AtomicUsize,
    }

    impl WorkerLink for FakeLink {
        fn capacity(&self) -> usize {
            self.capacity
        }

        fn submit(&mut self, keys: &[String]) -> io::Result<()> {
            self.pending.extend(keys.iter().cloned());
            self.done_pending = true;
            Ok(())
        }

        fn recv(&mut self) -> io::Result<WorkerEvent> {
            if let Some(delay) = self.delay {
                std::thread::sleep(delay);
            }
            if let Some(0) = self.die_after {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "scripted death",
                ));
            }
            match self.pending.pop_front() {
                Some(key) => {
                    if let Some(budget) = &mut self.die_after {
                        *budget -= 1;
                    }
                    let report = oracle()
                        .get(&key)
                        .expect("oracle covers the matrix")
                        .clone();
                    // An aliasing worker computes the right cell but labels
                    // it with a key the coordinator never asked it for.
                    let key = self.alias_first_to.take().unwrap_or(key);
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    Ok(WorkerEvent::Cell(key, Box::new(report)))
                }
                None if self.done_pending => {
                    self.done_pending = false;
                    Ok(WorkerEvent::Done)
                }
                None => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "nothing submitted",
                )),
            }
        }
    }

    static DELIVERED: AtomicUsize = AtomicUsize::new(0);

    /// Addresses script the fake transport: `cap<N>` sets capacity,
    /// `die<N>` kills the link after N delivered cells, `slow<N>` sleeps
    /// N ms at every recv, `refuse` fails the dial, `alias` mis-delivers
    /// the first cell.
    fn fake_dial(addr: &str, _: &MatrixSpec, _: u64) -> io::Result<Box<dyn WorkerLink>> {
        if addr.contains("refuse") {
            return Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"));
        }
        let script = |token: &str| {
            addr.split(token).nth(1).and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse::<usize>()
                    .ok()
            })
        };
        let capacity = script("cap").unwrap_or(1);
        let die_after = script("die");
        let delay = script("slow").map(|ms| std::time::Duration::from_millis(ms as u64));
        let alias_first_to = addr.contains("alias").then(|| {
            let spec = tiny_spec();
            let experiment = spec.experiment();
            cell_key(
                &experiment,
                &sdiq_core::ConfigVariant::base(&experiment),
                sdiq_workloads::Benchmark::Gcc, // not in the tiny matrix
                sdiq_core::Technique::Baseline,
            )
        });
        Ok(Box::new(FakeLink {
            capacity,
            pending: VecDeque::new(),
            die_after,
            done_pending: false,
            alias_first_to,
            delay,
            delivered: &DELIVERED,
        }))
    }

    fn run_fake(workers: &[&str], retry_budget: usize) -> Result<Sweep, BackendError> {
        let spec = tiny_spec();
        let experiment = spec.experiment();
        let matrix = spec.matrix(&experiment).unwrap();
        let remote = RemoteSpec {
            workers: workers.iter().map(|w| w.to_string()).collect(),
            spec,
            retry_budget,
            launch: |_, _, _, _| unreachable!("tests call the scheduler directly"),
        };
        run(&matrix, &remote, &HashMap::new(), None, fake_dial)
    }

    fn serial() -> Sweep {
        let spec = tiny_spec();
        let experiment = spec.experiment();
        spec.matrix(&experiment).unwrap().run()
    }

    #[test]
    fn healthy_pool_produces_the_serial_sweep() {
        let sweep = run_fake(&["a-cap1", "b-cap2"], 0).unwrap();
        assert_eq!(sweep, serial(), "remote assembly is bit-identical");
    }

    #[test]
    fn worker_death_requeues_its_cells_onto_survivors() {
        // Worker `a` dies after one delivered cell; worker `b` must pick
        // up everything it still owed, and the sweep is still exact.
        let sweep = run_fake(&["a-cap2-die1", "b-cap1"], 1).unwrap();
        assert_eq!(sweep, serial(), "failover keeps the result bit-identical");

        // A refused dial just shrinks the pool.
        let sweep = run_fake(&["refuse", "b-cap2"], 0).unwrap();
        assert_eq!(sweep, serial());
    }

    #[test]
    fn late_straggler_death_returns_cells_to_parked_survivors() {
        // Regression: the fast worker drains the queue and goes idle
        // while the slow worker still holds one in-flight cell; then the
        // slow worker dies. The idle survivor must be parked — not
        // exited — so the re-queued cell finds a worker and the run
        // still completes bit-identically. (Pre-fix, drivers exited on
        // the first empty claim and this run died with a drained pool.)
        let sweep = run_fake(&["a-cap1", "b-cap1-slow40-die0"], 1).unwrap();
        assert_eq!(sweep, serial(), "straggler failover is bit-identical");
    }

    #[test]
    fn a_drained_pool_is_a_clear_error_not_a_partial_suite() {
        let error = run_fake(&["a-die0"], 9).unwrap_err().to_string();
        assert!(
            error.contains("pool drained") && error.contains("died mid-batch"),
            "error names the failure: {error}"
        );
        let error = run_fake(&["refuse"], 0).unwrap_err().to_string();
        assert!(error.contains("dial failed"), "{error}");
        let error = run_fake(&[], 0).unwrap_err().to_string();
        assert!(error.contains("at least one worker"), "{error}");
    }

    #[test]
    fn the_retry_budget_stops_a_poison_cell() {
        // The lone worker dies on its first cell, over and over; dialing
        // happens once per worker, so a budget of 0 must abort on the
        // first re-queue rather than loop forever.
        let error = run_fake(&["a-die0"], 0).unwrap_err().to_string();
        assert!(
            error.contains("retry budget"),
            "budget exhaustion is fatal: {error}"
        );
    }

    #[test]
    fn foreign_cell_keys_abort_the_run() {
        let error = run_fake(&["a-alias"], 3).unwrap_err().to_string();
        assert!(
            error.contains("configurations disagree"),
            "foreign key is fatal: {error}"
        );
    }
}
