//! The worker daemon behind `repro serve`: accept one coordinator at a
//! time, advertise capacity, compute requested cells on the in-process
//! engine and stream each one back the moment it finishes.
//!
//! The daemon is stateless between connections on purpose: everything a
//! batch needs arrives in its `RunCells` frame (the [`MatrixSpec`] plus
//! the cell keys), so any daemon can serve any coordinator — there is no
//! enrolment step, and a daemon that restarts loses nothing but its warm
//! [`ArtifactCache`]. The cache *is* kept across batches and connections
//! (it is content-addressed, so staleness is impossible): a sweep that
//! re-dials the same daemon never rebuilds a program it already built.
//!
//! A coordinator that vanishes mid-batch only costs the daemon that
//! batch: write failures are recorded, the batch's remaining cells still
//! compute into the cache (warming it for the retry), and the daemon
//! goes back to `accept`.
//!
//! Two dial directions: normally the coordinator dials the daemon
//! (`--listen`, greeting `Hello`); with `--register host:port` the
//! daemon instead dials the coordinator's rendezvous listener and greets
//! with `Register` — after which the connection is identical. The
//! reverse direction exists for worker fleets behind NAT, where only
//! outbound connections are possible.

use crate::auth;
use crate::frame::{self, Codec};
use crate::lock_or_recover;
use crate::protocol::{Message, CAP_OBS1, CODEC_BIN1};
use sdiq_core::{matrix_fingerprint, ArtifactCache, CellSink, MatrixSpec, RunReport};
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Configuration of one worker daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind (`host:port`; port `0` picks a free one).
    /// Ignored when `register` is set — a registering daemon dials out
    /// instead of listening.
    pub listen: String,
    /// When set, reverse the dial direction: dial this coordinator
    /// rendezvous address (`repro --listen-workers`), announce capacity
    /// with a `Register` frame, then serve that connection exactly like
    /// an accepted one. For worker fleets behind NAT, where the
    /// coordinator cannot dial in.
    pub register: Option<String>,
    /// Parallel capacity advertised to coordinators and used as the
    /// in-process pool size (`0` = one per hardware thread).
    pub jobs: usize,
    /// Fault-injection hook for the failover tests and the CI smoke:
    /// after delivering this many cells (across the daemon's lifetime),
    /// abort the whole process *in place of* delivering the next one —
    /// exactly the wire-visible behaviour of a worker machine dying
    /// mid-cell. `None` in production.
    pub fail_after: Option<usize>,
    /// Fault-injection hook mirroring `fail_after` for the *other* death
    /// shape: after delivering this many cells, hang forever in place of
    /// delivering the next one — socket held open, heartbeats silenced,
    /// no frames — the wire-visible behaviour of a frozen machine or a
    /// blackholed network. Only the coordinator's heartbeat deadline can
    /// detect this one. `None` in production.
    pub stall_after: Option<usize>,
    /// Silence-means-dead threshold a *registered* daemon applies to its
    /// coordinator socket (`SO_RCVTIMEO`): a coordinator that holds the
    /// connection but never speaks again — hung process, blackholed
    /// network — would otherwise wedge the daemon in a read forever,
    /// with no listener to fall back to. Past the deadline the daemon
    /// drops the connection and re-registers. Zero disables the
    /// deadline; listening daemons never apply one (an accepted
    /// coordinator that dies is survived by going back to `accept`).
    pub heartbeat_deadline: Duration,
    /// Shared secret for the HMAC handshake (`--auth-key`). With a key
    /// set, a listening daemon challenges every coordinator before
    /// greeting it, and a registering daemon expects the coordinator's
    /// challenge before sending `Register`. `None` skips the handshake.
    pub auth_key: Option<String>,
    /// Advertise the compact `bin1` frame codec in the greeting
    /// (default; `--wire json` turns it off, pinning the connection to
    /// JSON frames for debugging and codec-vs-codec benchmarking).
    pub advertise_binary: bool,
}

/// Seconds of silence after which the daemon interleaves a `Heartbeat`
/// frame into the stream while a batch is computing, so WAN middleboxes
/// don't reap the idle-looking connection during a long cell — and, as
/// of the liveness layer, so the coordinator's heartbeat deadline knows
/// the daemon is alive. The cadence must stay *well* under any deadline
/// a coordinator might configure (the frames are ~25 bytes, so beating
/// every second costs nothing and buys a 30× margin against the default
/// 30 s deadline).
const HEARTBEAT_INTERVAL: Duration = Duration::from_secs(1);

/// Runs the worker daemon forever (until the process is killed):
/// bind, print the bound address, then serve coordinators one at a time.
///
/// The first stdout line is machine-readable — `LISTENING <addr>` — so
/// scripts that start daemons on port 0 can discover the real port;
/// human logging goes to stderr.
pub fn serve(options: &ServeOptions) -> io::Result<()> {
    if let Some(coordinator) = &options.register {
        return serve_registered(coordinator, options);
    }
    let listener = TcpListener::bind(&options.listen)?;
    let addr = listener.local_addr()?;
    let capacity = effective_capacity(options.jobs);
    println!("LISTENING {addr}");
    io::stdout().flush()?;
    eprintln!("sdiq-remote worker: listening on {addr}, capacity {capacity}");

    let cache = ArtifactCache::new();
    let delivered = AtomicUsize::new(0);
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(error) => {
                // Transient accept failures (a peer resetting before the
                // handshake, a momentary fd shortage) must not kill the
                // daemon — it outlives any one coordinator. Back off a
                // beat so a persistent failure can't spin the loop hot.
                eprintln!("sdiq-remote worker: accept failed: {error}; continuing");
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        let peer = stream
            .peer_addr()
            .map(|peer| peer.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        eprintln!("sdiq-remote worker: coordinator connected from {peer}");
        match handle_connection(
            stream,
            capacity,
            &cache,
            &delivered,
            options,
            Greeting::Hello,
        ) {
            Ok(()) => eprintln!("sdiq-remote worker: coordinator {peer} disconnected"),
            Err(error) => {
                // The daemon outlives any one coordinator: log and accept
                // the next connection.
                eprintln!("sdiq-remote worker: connection to {peer} failed: {error}");
            }
        }
    }
    unreachable!("TcpListener::incoming never returns None");
}

/// The reverse-dial daemon: dial the coordinator's rendezvous address
/// (retrying until it exists — worker fleets come up in any order),
/// announce capacity with `Register`, then serve that connection exactly
/// like an accepted one. When the coordinator finishes and closes, loop
/// back and re-register, so the daemon is ready for the next run.
fn serve_registered(coordinator: &str, options: &ServeOptions) -> io::Result<()> {
    let capacity = effective_capacity(options.jobs);
    // Machine-readable first line, mirroring `LISTENING <addr>`, so
    // scripts know the daemon is up before a coordinator exists.
    println!("REGISTERING {coordinator}");
    io::stdout().flush()?;
    eprintln!(
        "sdiq-remote worker: registering with coordinator at {coordinator}, capacity {capacity}"
    );
    let cache = ArtifactCache::new();
    let delivered = AtomicUsize::new(0);
    // Each knock is bounded: a blackholed coordinator address must cost
    // one short timeout per attempt, not the OS connect default
    // (minutes) — the same stall the coordinator-side connect_timeout
    // exists to prevent.
    const KNOCK_TIMEOUT: Duration = Duration::from_secs(5);
    let deadline = options.heartbeat_deadline;
    loop {
        let stream = match crate::client::connect_bounded(coordinator, KNOCK_TIMEOUT) {
            Ok(stream) => stream,
            Err(_) => {
                // No coordinator (yet): keep knocking. The interval is a
                // trade-off between rendezvous latency and log noise.
                std::thread::sleep(Duration::from_millis(250));
                continue;
            }
        };
        // The liveness guard this dial direction needs: an accepted
        // coordinator that dies is survived by returning to `accept`,
        // but a dialed one that goes silent would hold the read below
        // forever — there is no listener behind it. The deadline turns
        // that silence into an error, and the loop re-registers.
        if let Err(error) = stream.set_read_timeout((!deadline.is_zero()).then_some(deadline)) {
            eprintln!("sdiq-remote worker: configuring coordinator socket failed: {error}");
            std::thread::sleep(Duration::from_millis(250));
            continue;
        }
        eprintln!("sdiq-remote worker: registered with coordinator {coordinator}");
        match handle_connection(
            stream,
            capacity,
            &cache,
            &delivered,
            options,
            Greeting::Register,
        ) {
            Ok(()) => eprintln!("sdiq-remote worker: coordinator {coordinator} released us"),
            Err(error) => {
                eprintln!("sdiq-remote worker: connection to {coordinator} failed: {error}")
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }
}

/// Which greeting this daemon owes on a fresh connection: `Hello` when
/// the coordinator dialed us, `Register` when we dialed the coordinator.
#[derive(Clone, Copy)]
enum Greeting {
    Hello,
    Register,
}

fn effective_capacity(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// One coordinator connection's write half: the stream plus the codec
/// its frames use. JSON until the coordinator's `SetCodec` switches it —
/// the lock keeps the switch atomic with respect to in-flight frames.
struct Conn {
    stream: TcpStream,
    codec: Codec,
}

/// Serves one coordinator until it disconnects.
fn handle_connection(
    stream: TcpStream,
    capacity: usize,
    cache: &ArtifactCache,
    delivered: &AtomicUsize,
    options: &ServeOptions,
    greeting: Greeting,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut writer_stream = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    if let Some(key) = &options.auth_key {
        // Bound the handshake: a peer that connects and never completes
        // it must not wedge the daemon (which serves one coordinator at
        // a time). Restored to the run configuration below.
        let handshake = match options.heartbeat_deadline {
            deadline if deadline.is_zero() => Duration::from_secs(10),
            deadline => deadline,
        };
        writer_stream.set_read_timeout(Some(handshake))?;
        match greeting {
            // The coordinator dialed us: we challenge.
            Greeting::Hello => auth::acceptor_handshake(&mut reader, &mut writer_stream, key)?,
            // We dialed the coordinator: it challenges.
            Greeting::Register => match frame::read_message(&mut reader)? {
                Message::AuthChallenge { nonce } => {
                    auth::dialer_handshake(&mut reader, &mut writer_stream, key, &nonce)?
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::PermissionDenied,
                        format!(
                            "coordinator sent {other:?} instead of AuthChallenge — is it \
                             running without --auth-key?"
                        ),
                    ))
                }
            },
        }
        let deadline = options.heartbeat_deadline;
        writer_stream.set_read_timeout(match greeting {
            Greeting::Hello => None, // listening daemons run without one
            Greeting::Register => (!deadline.is_zero()).then_some(deadline),
        })?;
    }
    let writer = Mutex::new(Conn {
        stream: writer_stream,
        codec: Codec::Json,
    });
    let mut codecs = if options.advertise_binary {
        vec![CODEC_BIN1.to_string()]
    } else {
        Vec::new()
    };
    // Not a codec but a capability: this daemon understands the
    // observability extension (RunCells flags, HeartbeatMetrics,
    // TraceEvents). Riding the codecs list keeps old coordinators safe —
    // they select codecs by equality and ignore unknown entries.
    codecs.push(CAP_OBS1.to_string());
    let greeting = match greeting {
        Greeting::Hello => Message::Hello { capacity, codecs },
        Greeting::Register => Message::Register { capacity, codecs },
    };
    write_locked(&writer, &greeting)?;

    loop {
        // A timed-out read is the socket deadline tripping (`WouldBlock`
        // on Unix `SO_RCVTIMEO`, `TimedOut` on Windows): rewrite it into
        // the liveness verdict it means so the registered loop's log says
        // why it is re-registering.
        let message = match frame::read_message_opt(&mut reader) {
            Ok(message) => message,
            Err(error)
                if matches!(
                    error.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "coordinator silent past the heartbeat deadline — presumed hung",
                ));
            }
            Err(error) => return Err(error),
        };
        let Some(message) = message else {
            return Ok(()); // coordinator released us cleanly
        };
        match message {
            Message::RunCells {
                fingerprint,
                spec,
                keys,
                observe,
                trace,
            } => run_batch(
                &writer,
                fingerprint,
                &spec,
                keys,
                capacity,
                cache,
                delivered,
                options,
                BatchObserve { observe, trace },
            )?,
            Message::Heartbeat => continue,
            Message::SetCodec { codec } if codec == CODEC_BIN1 && options.advertise_binary => {
                // From here on our frames are bin1; the coordinator's
                // reads auto-detect, so no ack is needed and TCP
                // ordering guarantees it sees the switch after its own
                // request.
                lock_or_recover(&writer).codec = Codec::Binary;
            }
            Message::SetCodec { codec } => {
                write_locked(
                    &writer,
                    &Message::Error {
                        message: format!("worker does not speak codec `{codec}`"),
                    },
                )?;
            }
            Message::Error { message } => {
                // The coordinator refused us (auth mismatch, version
                // skew): surface its reason instead of a generic frame
                // error.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("coordinator reported: {message}"),
                ));
            }
            other => {
                // Tell the coordinator what went wrong instead of
                // silently dropping the frame; it will abandon us.
                write_locked(
                    &writer,
                    &Message::Error {
                        message: format!("worker cannot handle {other:?}"),
                    },
                )?;
            }
        }
    }
}

/// What the coordinator asked this batch to observe about itself (the
/// `RunCells` flags; both false from pre-observability coordinators).
#[derive(Clone, Copy)]
struct BatchObserve {
    /// Piggyback cumulative metrics on the periodic heartbeats.
    observe: bool,
    /// Record spans and ship them back before `Done`.
    trace: bool,
}

/// Computes one `RunCells` batch, streaming each cell as it finishes.
#[allow(clippy::too_many_arguments)] // daemon wiring, called from one place
fn run_batch(
    writer: &Mutex<Conn>,
    fingerprint: u64,
    spec: &MatrixSpec,
    keys: Vec<String>,
    capacity: usize,
    cache: &ArtifactCache,
    delivered: &AtomicUsize,
    options: &ServeOptions,
    batch_observe: BatchObserve,
) -> io::Result<()> {
    // The spec is wire input: resolve it fully (names, sweep ranges) and
    // refuse with a frame — never a panic — on anything off.
    let experiment = spec.experiment();
    let matrix = match spec.matrix(&experiment) {
        Ok(matrix) => matrix.jobs(capacity),
        Err(reason) => {
            return write_locked(writer, &Message::Error { message: reason });
        }
    };
    let own_fingerprint = matrix_fingerprint(&matrix.cell_keys());
    if own_fingerprint != fingerprint {
        return write_locked(
            writer,
            &Message::Error {
                message: format!(
                    "matrix fingerprint mismatch (coordinator {fingerprint:016x}, \
                     worker {own_fingerprint:016x}) — version skew between binaries?"
                ),
            },
        );
    }
    // Ack the batch so the coordinator's heartbeat-skipping path is
    // exercised on every exchange, not only on slow cells.
    write_locked(writer, &Message::Heartbeat)?;

    let requested: std::collections::HashSet<String> = keys.into_iter().collect();
    eprintln!(
        "sdiq-remote worker: computing {} cell(s), {capacity} jobs",
        requested.len()
    );
    let sink = StreamSink {
        writer,
        failed: Mutex::new(None),
        delivered,
        fail_after: options.fail_after,
        stall_after: options.stall_after,
        stalled: AtomicBool::new(false),
    };
    // Teardown latency is on the per-batch hot path: with pipelined
    // batches a capacity-1 daemon sees one `RunCells` per cell, so the
    // heartbeat thread must stop the instant the batch finishes — a
    // polled sleep here once cost a tick per batch, which dominated the
    // whole suite's wall clock on small cells. Hence a condvar the
    // finishing batch can interrupt mid-wait.
    let stop_heartbeats = (Mutex::new(false), Condvar::new());
    // Span recording is daemon-global, which is exactly the scope it
    // should have here: the daemon serves one coordinator (one batch) at
    // a time, and the drain below both ships and clears the buffer.
    if batch_observe.trace {
        sdiq_obs::set_tracing(true);
    }
    let computed = std::thread::scope(|scope| {
        let heartbeats = scope.spawn(|| {
            let (stop, interrupt) = &stop_heartbeats;
            let mut stopped = lock_or_recover(stop);
            loop {
                let (guard, wait) = interrupt
                    .wait_timeout(stopped, HEARTBEAT_INTERVAL)
                    .unwrap_or_else(PoisonError::into_inner);
                stopped = guard;
                if *stopped {
                    return;
                }
                if sink.stalled.load(Ordering::Relaxed) {
                    // A frozen machine beats no heart: the --stall-after
                    // hook must present total wire silence, or the
                    // coordinator's deadline could never trip.
                    return;
                }
                // An observed batch's keep-alives carry the daemon's
                // cumulative totals; receivers treat them as heartbeats
                // either way, so liveness is unaffected.
                let beat = if batch_observe.observe {
                    Message::HeartbeatMetrics {
                        metrics: sdiq_obs::MetricsDelta::capture(),
                    }
                } else {
                    Message::Heartbeat
                };
                if wait.timed_out() && sink.write(&beat).is_err() {
                    return; // sink recorded the failure
                }
            }
        });
        let computed = {
            let _span = sdiq_obs::span("run-batch", "server");
            matrix.run_cells_by_key(cache, &requested, Some(&sink))
        };
        *lock_or_recover(&stop_heartbeats.0) = true;
        stop_heartbeats.1.notify_all();
        if heartbeats.join().is_err() {
            unreachable!("the heartbeat thread has no panic path of its own");
        }
        computed
    });
    // Drain even on a failed batch: the buffer must not leak this
    // batch's spans into the next coordinator's trace.
    let trace_events = if batch_observe.trace {
        sdiq_obs::set_tracing(false);
        sdiq_obs::drain()
    } else {
        Vec::new()
    };

    if let Some(error) = sink
        .failed
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(error); // coordinator vanished mid-stream
    }
    if !trace_events.is_empty() {
        // Ship the batch's spans right before Done, so the coordinator
        // has them the moment it decides the batch is complete.
        write_locked(
            writer,
            &Message::TraceEvents {
                events: trace_events,
            },
        )?;
    }
    if batch_observe.observe {
        // A final cumulative snapshot per batch: the periodic heartbeat
        // only fires once a second, so a fast batch would otherwise end
        // with the coordinator never having seen this worker's totals.
        write_locked(
            writer,
            &Message::HeartbeatMetrics {
                metrics: sdiq_obs::MetricsDelta::capture(),
            },
        )?;
    }
    match computed {
        Ok(map) => write_locked(
            writer,
            &Message::Done {
                computed: map.len(),
            },
        ),
        Err(reason) => write_locked(writer, &Message::Error { message: reason }),
    }
}

fn write_locked(writer: &Mutex<Conn>, message: &Message) -> io::Result<()> {
    let mut conn = lock_or_recover(writer);
    let codec = conn.codec;
    frame::write_message_codec(&mut conn.stream, message, codec)
}

/// A [`CellSink`] that streams every finished cell to the coordinator.
/// Engine worker threads call it concurrently; the writer mutex keeps
/// frames whole. Write failures are recorded instead of panicking (a
/// vanished coordinator must not kill the daemon), after which further
/// cells are computed but not sent — they stay in the artifact cache,
/// warming the inevitable retry.
struct StreamSink<'a> {
    writer: &'a Mutex<Conn>,
    failed: Mutex<Option<io::Error>>,
    delivered: &'a AtomicUsize,
    fail_after: Option<usize>,
    stall_after: Option<usize>,
    /// Set once `stall_after` trips; silences the heartbeat thread and
    /// freezes every compute thread that reaches the sink, so the whole
    /// daemon goes wire-silent like a frozen machine.
    stalled: AtomicBool,
}

impl StreamSink<'_> {
    fn write(&self, message: &Message) -> io::Result<()> {
        if let Some(error) = &*lock_or_recover(&self.failed) {
            return Err(io::Error::new(error.kind(), error.to_string()));
        }
        let result = write_locked(self.writer, message);
        if let Err(error) = &result {
            let mut failed = lock_or_recover(&self.failed);
            failed.get_or_insert(io::Error::new(error.kind(), error.to_string()));
        }
        result
    }
}

impl CellSink for StreamSink<'_> {
    fn cell_complete(&self, key: &str, report: &RunReport) {
        if let Some(limit) = self.stall_after {
            if self.delivered.load(Ordering::Relaxed) >= limit {
                // Fault injection: hang exactly as a frozen machine would —
                // socket open, no frames, heartbeats silenced (the flag
                // above), this thread (and any other compute thread that
                // lands here) parked forever. Only the coordinator's
                // heartbeat deadline can detect this.
                if !self.stalled.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "sdiq-remote worker: --stall-after {limit} reached, \
                         hanging in place of delivering `{key}` (simulated freeze)"
                    );
                }
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        if let Some(limit) = self.fail_after {
            if self.delivered.load(Ordering::Relaxed) >= limit {
                // Fault injection: die exactly as a killed machine would —
                // mid-cell, without a goodbye frame.
                eprintln!(
                    "sdiq-remote worker: --fail-after {limit} reached, \
                     aborting in place of delivering `{key}`"
                );
                std::process::exit(3);
            }
        }
        if self
            .write(&Message::CellDone {
                key: key.to_string(),
                report: Box::new(report.clone()),
            })
            .is_ok()
        {
            self.delivered.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    /// Polls a non-blocking listener for the next connection, bounded so
    /// a regression hangs the assertion, not the test suite.
    fn accept_within(listener: &TcpListener, limit: Duration) -> TcpStream {
        let deadline = Instant::now() + limit;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .expect("accepted socket can be made blocking");
                    return stream;
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    assert!(Instant::now() < deadline, "no connection within {limit:?}");
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(error) => panic!("accept failed: {error}"),
            }
        }
    }

    /// Reads the daemon's opening frame and asserts it is `Register`.
    fn expect_register(stream: &TcpStream) {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout is settable");
        let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
        match frame::read_message(&mut reader).expect("greeting arrives") {
            Message::Register { .. } => {}
            other => panic!("worker opened with {other:?} instead of Register"),
        }
    }

    /// The wire shape of a hung rendezvous coordinator: it accepts the
    /// worker's `Register` and then never speaks again, holding the
    /// socket open. The worker must trip its heartbeat deadline and dial
    /// the rendezvous again, not block in the read forever.
    #[test]
    fn a_silent_coordinator_makes_the_registered_worker_redial() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
        listener.set_nonblocking(true).expect("listener can poll");
        let coordinator = listener.local_addr().expect("bound address").to_string();
        let options = ServeOptions {
            listen: String::new(),
            register: Some(coordinator),
            jobs: 1,
            fail_after: None,
            stall_after: None,
            heartbeat_deadline: Duration::from_millis(200),
            auth_key: None,
            advertise_binary: true,
        };
        // The daemon loops forever; park it on a thread the test outlives.
        std::thread::spawn(move || {
            let _ = serve(&options);
        });

        let first = accept_within(&listener, Duration::from_secs(10));
        expect_register(&first);
        // Total silence — but the socket stays open, so only the
        // worker-side deadline can conclude the coordinator is gone.
        let second = accept_within(&listener, Duration::from_secs(10));
        expect_register(&second);
        // `first` lived through the whole wait: the redial came from the
        // deadline, not from a connection close.
        drop(first);
    }
}
