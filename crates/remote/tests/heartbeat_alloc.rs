//! Pins the zero-allocation heartbeat fast path promised by
//! `sdiq_remote::frame`: once a connection is warm, writing and reading
//! a `Heartbeat` must not touch the allocator in either codec. The
//! liveness layer from the stall-recovery work sends these on every
//! worker every interval for the whole run — an allocation per beat
//! would put the allocator on the fleet's steady-state hot path.
//!
//! The harness swaps in a counting `#[global_allocator]` that tallies
//! allocations per thread (thread-local, so the test is immune to
//! whatever the test runner's other threads are doing). One warm-up
//! round trip absorbs lazy one-time costs; after that, many round trips
//! must leave the current thread's count untouched.

// Integration tests are exempt from the workspace unwrap/expect denial
// (the crate-root cfg_attr does not reach separately compiled test crates).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::io;

use sdiq_remote::frame::{self, Codec};
use sdiq_remote::protocol::Message;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the bookkeeping is a
// thread-local `Cell` bump, which cannot re-enter the allocator (const
// initialization means no lazy init, and `Cell<u64>` has no destructor
// to register).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|count| count.set(count.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One heartbeat round trip through a fixed stack buffer: frame it with
/// the writer-side codec, then read it back through the auto-detecting
/// reader. Returns the decoded message so the compiler cannot discard
/// the work.
fn round_trip(codec: Codec, buffer: &mut [u8]) -> Message {
    let mut cursor = io::Cursor::new(&mut *buffer);
    frame::write_message_codec(&mut cursor, &Message::Heartbeat, codec).expect("write heartbeat");
    let written = cursor.position() as usize;
    let mut reader = &buffer[..written];
    frame::read_message(&mut reader).expect("read heartbeat")
}

#[test]
fn heartbeat_round_trips_without_allocating_in_either_codec() {
    let mut buffer = [0u8; 64];
    for codec in [Codec::Json, Codec::Binary] {
        // Warm-up: absorb any one-time lazy initialization.
        assert_eq!(round_trip(codec, &mut buffer), Message::Heartbeat);

        let before = THREAD_ALLOCS.with(Cell::get);
        for _ in 0..100 {
            assert_eq!(round_trip(codec, &mut buffer), Message::Heartbeat);
        }
        let after = THREAD_ALLOCS.with(Cell::get);
        assert_eq!(
            after - before,
            0,
            "{codec:?} heartbeat round trip allocated {} time(s) over 100 iterations",
            after - before
        );
    }
}
