//! Property tests for the `bin1` frame decoder on untrusted input.
//!
//! The decoder's contract is *totality*: whatever bytes arrive — torn
//! frames, flipped bits, hostile length fields, plain noise — it must
//! return an error or a message, never panic and never over-read. The
//! unit tests in `binary.rs` pin this for every strict prefix of a
//! fixed message set; these properties drive the same contract with
//! randomly generated messages, random corruption, and raw byte soup.

// Integration tests are exempt from the workspace unwrap/expect denial
// (the crate-root cfg_attr does not reach separately compiled test crates).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use sdiq_obs::{MetricsDelta, TraceEvent};
use sdiq_remote::binary::{decode_message, encode_message};
use sdiq_remote::protocol::Message;

/// Printable-ASCII strings (cell keys, codec names, error text, MACs are
/// all ASCII in practice; UTF-8 handling is pinned by the unit tests).
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(32u16..127u16, 0..24)
        .prop_map(|chars| chars.into_iter().map(|c| c as u8 as char).collect())
}

fn arb_strings() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_string(), 0..4)
}

/// Full-range `u64` (the range strategy excludes its end, which is fine —
/// the codec has no special case at `u64::MAX`): the varint path and the
/// JSON number path must both carry any value a worker's counters reach.
fn arb_u64() -> impl Strategy<Value = u64> {
    0u64..u64::MAX
}

fn arb_metrics_delta() -> impl Strategy<Value = MetricsDelta> {
    (
        (arb_u64(), arb_u64(), arb_u64()),
        (arb_u64(), arb_u64(), arb_u64()),
    )
        .prop_map(
            |(
                (cells_done, cells_in_flight, sim_instructions),
                (cache_hits, cache_misses, wall_nanos),
            )| {
                MetricsDelta {
                    cells_done,
                    cells_in_flight,
                    sim_instructions,
                    cache_hits,
                    cache_misses,
                    wall_nanos,
                }
            },
        )
}

fn arb_trace_event() -> impl Strategy<Value = TraceEvent> {
    (
        (arb_string(), arb_string()),
        (arb_u64(), arb_u64(), arb_u64()),
        prop_oneof![(0u8..1u8).prop_map(|_| None), arb_u64().prop_map(Some),],
        prop::collection::vec((arb_string(), arb_string()), 0..3),
    )
        .prop_map(
            |((name, cat), (pid, tid, start_nanos), dur_nanos, args)| TraceEvent {
                name,
                cat,
                pid,
                tid,
                start_nanos,
                dur_nanos,
                args,
            },
        )
}

/// Control-plane messages over generated field values. (`RunCells` and
/// `CellDone` carry deep nested structures; their codec is pinned by the
/// differential unit tests against real reports — generating arbitrary
/// valid reports here would mostly re-test the generator.)
fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (0usize..1024, arb_strings())
            .prop_map(|(capacity, codecs)| Message::Hello { capacity, codecs }),
        (0usize..1024, arb_strings())
            .prop_map(|(capacity, codecs)| Message::Register { capacity, codecs }),
        (0u8..1u8).prop_map(|_| Message::Heartbeat),
        (0usize..1 << 20).prop_map(|computed| Message::Done { computed }),
        arb_string().prop_map(|message| Message::Error { message }),
        arb_string().prop_map(|codec| Message::SetCodec { codec }),
        arb_string().prop_map(|nonce| Message::AuthChallenge { nonce }),
        (arb_string(), arb_string()).prop_map(|(nonce, mac)| Message::AuthResponse { nonce, mac }),
        arb_string().prop_map(|mac| Message::AuthOk { mac }),
        arb_metrics_delta().prop_map(|metrics| Message::HeartbeatMetrics { metrics }),
        prop::collection::vec(arb_trace_event(), 0..4)
            .prop_map(|events| Message::TraceEvents { events }),
    ]
}

fn arb_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u16..256u16, 0..max_len)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as u8).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_messages_round_trip(message in arb_message()) {
        let payload = encode_message(&message);
        let decoded = decode_message(&payload);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), message);
    }

    #[test]
    fn every_truncation_of_a_valid_message_errors(
        message in arb_message(),
        fraction in 0.0f64..1.0f64,
    ) {
        // The codec has no optional tails, so *every* strict prefix is
        // invalid — and must be rejected, not mis-decoded or panicked on.
        let payload = encode_message(&message);
        let cut = ((payload.len() as f64) * fraction) as usize; // < len
        prop_assert!(
            decode_message(&payload[..cut]).is_err(),
            "prefix of {} of {} bytes decoded", cut, payload.len()
        );
    }

    #[test]
    fn corrupted_messages_never_panic(
        message in arb_message(),
        position in 0.0f64..1.0f64,
        flip in 1u16..256u16,
    ) {
        // Flip one byte anywhere: the decoder may reject it, or it may
        // decode some other well-formed message (a flipped length byte
        // can turn one valid string into another, and LEB128 tolerates
        // non-minimal varints) — but it must stay total, and whatever it
        // accepts must itself round-trip.
        let mut payload = encode_message(&message);
        let index = ((payload.len() as f64) * position) as usize;
        payload[index] ^= flip as u8;
        if let Ok(decoded) = decode_message(&payload) {
            let reencoded = encode_message(&decoded);
            prop_assert_eq!(decode_message(&reencoded).unwrap(), decoded);
        }
    }

    #[test]
    fn byte_soup_never_panics(payload in arb_bytes(96)) {
        // Raw noise: errors are expected, panics and over-reads are not.
        // Whatever the decoder accepts must itself round-trip.
        if let Ok(decoded) = decode_message(&payload) {
            let reencoded = encode_message(&decoded);
            prop_assert_eq!(decode_message(&reencoded).unwrap(), decoded);
        }
    }

    #[test]
    fn hostile_length_fields_error_before_allocating(
        which in 0usize..6,
        length in (1u64 << 32)..(1u64 << 62),
    ) {
        use sdiq_remote::binary::{
            TAG_AUTH_CHALLENGE, TAG_AUTH_OK, TAG_AUTH_RESPONSE, TAG_CELL_DONE, TAG_ERROR,
            TAG_SET_CODEC,
        };
        // A tiny payload whose leading string claims a multi-gigabyte
        // length must be rejected by the bounds check (length > bytes
        // remaining), not trusted into an allocation.
        let tags = [
            TAG_CELL_DONE,
            TAG_ERROR,
            TAG_SET_CODEC,
            TAG_AUTH_CHALLENGE,
            TAG_AUTH_RESPONSE,
            TAG_AUTH_OK,
        ];
        let mut payload = vec![tags[which]];
        let mut value = length;
        while value >= 0x80 {
            payload.push((value as u8 & 0x7f) | 0x80);
            value >>= 7;
        }
        payload.push(value as u8);
        prop_assert!(decode_message(&payload).is_err());
    }

    #[test]
    fn heartbeat_metrics_round_trip_both_codecs(metrics in arb_metrics_delta()) {
        // The obs piggyback must survive whichever codec the connection
        // negotiated — bin1 varints and the JSON number path alike.
        let message = Message::HeartbeatMetrics { metrics };
        prop_assert_eq!(decode_message(&encode_message(&message)).unwrap(), message.clone());
        let mut rendered = String::new();
        message.to_json().render(&mut rendered);
        let parsed = sdiq_core::persist::parse(&rendered).unwrap();
        prop_assert_eq!(Message::from_json(&parsed).unwrap(), message);
    }

    #[test]
    fn trace_events_round_trip_both_codecs(
        events in prop::collection::vec(arb_trace_event(), 0..4),
    ) {
        let message = Message::TraceEvents { events };
        prop_assert_eq!(decode_message(&encode_message(&message)).unwrap(), message.clone());
        let mut rendered = String::new();
        message.to_json().render(&mut rendered);
        let parsed = sdiq_core::persist::parse(&rendered).unwrap();
        prop_assert_eq!(Message::from_json(&parsed).unwrap(), message);
    }
}
