//! Hybrid branch predictor and branch target buffer (Table 1).
//!
//! Direction prediction: 2K-entry gshare and 2K-entry bimodal tables of
//! 2-bit saturating counters, arbitrated by a 1K-entry selector (also 2-bit
//! counters) indexed by the branch PC. Targets come from a 2048-entry 4-way
//! BTB.

use crate::config::BranchPredictorConfig;

/// 2-bit saturating counter helpers.
fn counter_taken(c: u8) -> bool {
    c >= 2
}

fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// Outcome of a direction prediction (kept so the update can train the
/// selector towards whichever component was right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectionPrediction {
    /// Final predicted direction.
    pub taken: bool,
    /// What the gshare component said.
    pub gshare_taken: bool,
    /// What the bimodal component said.
    pub bimodal_taken: bool,
    /// `true` if the selector chose the gshare component.
    pub chose_gshare: bool,
}

/// The hybrid direction predictor + BTB.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    gshare: Vec<u8>,
    bimodal: Vec<u8>,
    selector: Vec<u8>,
    history: u64,
    /// `btb[set]` holds (tag, target) pairs, at most `btb_ways` long, in LRU
    /// order (most recent last).
    btb: Vec<Vec<(u64, u64)>>,
    lookups: u64,
    direction_mispredicts: u64,
    btb_misses: u64,
}

impl BranchPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new(config: BranchPredictorConfig) -> Self {
        let btb_sets = (config.btb_entries / config.btb_ways).max(1);
        BranchPredictor {
            config,
            gshare: vec![1; config.gshare_entries.max(1)],
            bimodal: vec![1; config.bimodal_entries.max(1)],
            selector: vec![1; config.selector_entries.max(1)],
            history: 0,
            btb: vec![Vec::new(); btb_sets],
            lookups: 0,
            direction_mispredicts: 0,
            btb_misses: 0,
        }
    }

    fn gshare_index(&self, addr: u64) -> usize {
        let n = self.gshare.len() as u64;
        (((addr >> 2) ^ self.history) % n) as usize
    }

    fn bimodal_index(&self, addr: u64) -> usize {
        ((addr >> 2) % self.bimodal.len() as u64) as usize
    }

    fn selector_index(&self, addr: u64) -> usize {
        ((addr >> 2) % self.selector.len() as u64) as usize
    }

    /// Predicts the direction of the conditional branch at `addr`.
    pub fn predict_direction(&mut self, addr: u64) -> DirectionPrediction {
        self.lookups += 1;
        let gshare_taken = counter_taken(self.gshare[self.gshare_index(addr)]);
        let bimodal_taken = counter_taken(self.bimodal[self.bimodal_index(addr)]);
        let chose_gshare = counter_taken(self.selector[self.selector_index(addr)]);
        let taken = if chose_gshare {
            gshare_taken
        } else {
            bimodal_taken
        };
        DirectionPrediction {
            taken,
            gshare_taken,
            bimodal_taken,
            chose_gshare,
        }
    }

    /// Updates the direction predictor with the actual outcome.
    pub fn update_direction(&mut self, addr: u64, prediction: DirectionPrediction, taken: bool) {
        if prediction.taken != taken {
            self.direction_mispredicts += 1;
        }
        let gi = self.gshare_index(addr);
        self.gshare[gi] = counter_update(self.gshare[gi], taken);
        let bi = self.bimodal_index(addr);
        self.bimodal[bi] = counter_update(self.bimodal[bi], taken);
        // Train the selector towards whichever component was correct (when
        // they disagree).
        if prediction.gshare_taken != prediction.bimodal_taken {
            let si = self.selector_index(addr);
            let gshare_right = prediction.gshare_taken == taken;
            self.selector[si] = counter_update(self.selector[si], gshare_right);
        }
        // Global history update.
        self.history = ((self.history << 1) | u64::from(taken)) & 0xffff;
    }

    fn btb_set_and_tag(&self, addr: u64) -> (usize, u64) {
        let sets = self.btb.len() as u64;
        let idx = addr >> 2;
        ((idx % sets) as usize, idx / sets)
    }

    /// Looks the target of the control transfer at `addr` up in the BTB.
    pub fn predict_target(&mut self, addr: u64) -> Option<u64> {
        let (set, tag) = self.btb_set_and_tag(addr);
        let entries = &mut self.btb[set];
        if let Some(pos) = entries.iter().position(|(t, _)| *t == tag) {
            let entry = entries.remove(pos);
            let target = entry.1;
            entries.push(entry);
            Some(target)
        } else {
            self.btb_misses += 1;
            None
        }
    }

    /// Installs / refreshes the target of the control transfer at `addr`.
    pub fn update_target(&mut self, addr: u64, target: u64) {
        let ways = self.config.btb_ways;
        let (set, tag) = self.btb_set_and_tag(addr);
        let entries = &mut self.btb[set];
        if let Some(pos) = entries.iter().position(|(t, _)| *t == tag) {
            entries.remove(pos);
        } else if entries.len() >= ways {
            entries.remove(0);
        }
        entries.push((tag, target));
    }

    /// Extra penalty applied on a misprediction, from the configuration.
    pub fn redirect_penalty(&self) -> u32 {
        self.config.mispredict_redirect_penalty
    }

    /// (lookups, direction mispredictions, BTB misses).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.lookups, self.direction_mispredicts, self.btb_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(SimConfig::hpca2005().branch)
    }

    #[test]
    fn always_taken_branch_is_learned() {
        let mut p = predictor();
        let addr = 0x40_0010;
        let mut wrong = 0;
        for _ in 0..100 {
            let pred = p.predict_direction(addr);
            if !pred.taken {
                wrong += 1;
            }
            p.update_direction(addr, pred, true);
        }
        // After warm-up the branch is always predicted taken.
        assert!(
            wrong <= 3,
            "only the first few predictions may be wrong, got {wrong}"
        );
    }

    #[test]
    fn alternating_branch_is_learned_by_gshare() {
        let mut p = predictor();
        let addr = 0x40_0020;
        let mut wrong_late = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            let pred = p.predict_direction(addr);
            if i >= 100 && pred.taken != taken {
                wrong_late += 1;
            }
            p.update_direction(addr, pred, taken);
        }
        // gshare captures the alternating pattern through global history; the
        // hybrid should converge to (near) zero mispredictions.
        assert!(wrong_late <= 10, "got {wrong_late} late mispredictions");
    }

    #[test]
    fn loop_exit_pattern_has_low_miss_rate() {
        let mut p = predictor();
        let addr = 0x40_0040;
        let mut wrong = 0u32;
        let mut total = 0u32;
        for _trip in 0..50 {
            for i in 0..10u32 {
                let taken = i != 9; // loop back 9 times, fall out once
                let pred = p.predict_direction(addr);
                if pred.taken != taken {
                    wrong += 1;
                }
                p.update_direction(addr, pred, taken);
                total += 1;
            }
        }
        let rate = f64::from(wrong) / f64::from(total);
        assert!(rate < 0.25, "loop branch mispredict rate {rate}");
    }

    #[test]
    fn btb_remembers_targets_and_tracks_misses() {
        let mut p = predictor();
        assert_eq!(p.predict_target(0x40_0100), None);
        p.update_target(0x40_0100, 0x40_2000);
        assert_eq!(p.predict_target(0x40_0100), Some(0x40_2000));
        let (_, _, misses) = p.stats();
        assert_eq!(misses, 1);
    }

    #[test]
    fn btb_evicts_lru_within_a_set() {
        let config = BranchPredictorConfig {
            btb_entries: 4,
            btb_ways: 2,
            ..SimConfig::hpca2005().branch
        };
        let mut p = BranchPredictor::new(config);
        // Two sets; addresses mapping to set 0: (addr>>2) % 2 == 0.
        let a = 0x1000; // idx 0x400, set 0
        let b = 0x1008; // idx 0x402, set 0
        let c = 0x1010; // idx 0x404, set 0
        p.update_target(a, 1);
        p.update_target(b, 2);
        assert_eq!(p.predict_target(a), Some(1)); // a becomes MRU
        p.update_target(c, 3); // evicts b
        assert_eq!(p.predict_target(a), Some(1));
        assert_eq!(p.predict_target(b), None);
    }

    #[test]
    fn mispredict_counter_matches_manual_count() {
        let mut p = predictor();
        let addr = 0x40_0400;
        let outcomes = [true, true, false, true, false, false, true];
        let mut manual = 0;
        for &taken in &outcomes {
            let pred = p.predict_direction(addr);
            if pred.taken != taken {
                manual += 1;
            }
            p.update_direction(addr, pred, taken);
        }
        let (lookups, mispredicts, _) = p.stats();
        assert_eq!(lookups, outcomes.len() as u64);
        assert_eq!(mispredicts, manual);
    }
}
