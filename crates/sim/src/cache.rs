//! Set-associative caches and the two-level hierarchy of Table 1.

use crate::config::{CacheConfig, SimConfig};

/// A single set-associative, write-allocate cache with LRU replacement.
///
/// Only tags are modelled — the simulator needs latencies and hit/miss
/// behaviour, not data contents (the functional executor owns the data).
///
/// Tag and recency state live in flat `sets × ways` arrays (no per-set
/// `Vec`s): one contiguous scan per access on the simulator's hot path. A
/// `last_use` of 0 marks an invalid way (the use counter starts at 1), so
/// the LRU victim search (`min(last_use)`) naturally fills invalid ways
/// first — identical replacement behaviour to a per-set list.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    /// `(line_shift, set_mask, tag_shift)` when both the line size and the
    /// set count are powers of two (every Table 1 geometry is): index math
    /// becomes shift/mask instead of three hardware divisions per access.
    pow2: Option<(u32, u64, u32)>,
    /// `tags[set * ways + way]`.
    tags: Vec<u64>,
    /// `last_use[set * ways + way]`; 0 = invalid way.
    last_use: Vec<u64>,
    use_counter: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let pow2 = (config.line_bytes.is_power_of_two() && sets.is_power_of_two()).then(|| {
            (
                config.line_bytes.trailing_zeros(),
                sets as u64 - 1,
                sets.trailing_zeros(),
            )
        });
        Cache {
            config,
            sets,
            pow2,
            tags: vec![0; sets * config.ways],
            last_use: vec![0; sets * config.ways],
            use_counter: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        if let Some((line_shift, set_mask, tag_shift)) = self.pow2 {
            let line = addr >> line_shift;
            return ((line & set_mask) as usize, line >> tag_shift);
        }
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        (set, tag)
    }

    /// Accesses `addr`; returns `true` on hit. The line is installed on a
    /// miss (write-allocate for both loads and stores).
    pub fn access(&mut self, addr: u64) -> bool {
        self.use_counter += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.config.ways;
        let ways = &mut self.last_use[base..base + self.config.ways];
        let tags = &self.tags[base..base + self.config.ways];
        let mut victim = 0usize;
        let mut victim_use = u64::MAX;
        for (way, (&way_tag, way_use)) in tags.iter().zip(ways.iter_mut()).enumerate() {
            if *way_use != 0 && way_tag == tag {
                *way_use = self.use_counter;
                self.hits += 1;
                return true;
            }
            if *way_use < victim_use {
                victim_use = *way_use;
                victim = way;
            }
        }
        // Miss: fill the first invalid way, else evict the LRU way.
        self.misses += 1;
        self.tags[base + victim] = tag;
        self.last_use[base + victim] = self.use_counter;
        false
    }

    /// Hit latency of this cache.
    pub fn hit_latency(&self) -> u32 {
        self.config.hit_latency
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Result of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessResult {
    /// Total latency in cycles.
    pub latency: u32,
    /// `true` if the access missed in the first-level cache.
    pub l1_miss: bool,
    /// `true` if the access also missed in the L2.
    pub l2_miss: bool,
}

/// The I-cache / D-cache / unified-L2 hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    memory_latency: u32,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &SimConfig) -> Self {
        CacheHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            memory_latency: config.memory_latency,
        }
    }

    fn access_backed(&mut self, first_hit: bool, first_latency: u32, addr: u64) -> MemAccessResult {
        if first_hit {
            return MemAccessResult {
                latency: first_latency,
                l1_miss: false,
                l2_miss: false,
            };
        }
        let l2_hit = self.l2.access(addr);
        if l2_hit {
            MemAccessResult {
                latency: first_latency + self.l2.hit_latency(),
                l1_miss: true,
                l2_miss: false,
            }
        } else {
            MemAccessResult {
                latency: first_latency + self.l2.hit_latency() + self.memory_latency,
                l1_miss: true,
                l2_miss: true,
            }
        }
    }

    /// Instruction fetch access.
    pub fn access_instruction(&mut self, addr: u64) -> MemAccessResult {
        let hit = self.l1i.access(addr);
        let lat = self.l1i.hit_latency();
        self.access_backed(hit, lat, addr)
    }

    /// Data access (load or store).
    pub fn access_data(&mut self, addr: u64) -> MemAccessResult {
        let hit = self.l1d.access(addr);
        let lat = self.l1d.hit_latency();
        self.access_backed(hit, lat, addr)
    }

    /// Completes an instruction fetch whose L1i outcome was precomputed as
    /// a *miss* (the compiled backend of [`crate::plan`] resolves the L1i
    /// hit/miss sequence at plan-build time): performs only the dynamic
    /// part — the shared-L2 access — with the same latency accounting as
    /// [`CacheHierarchy::access_instruction`] on a miss. The L2 is shared
    /// between the instruction and data paths, so its state depends on the
    /// run-time interleave and cannot be precomputed.
    pub fn refill_instruction_after_l1i_miss(&mut self, addr: u64) -> MemAccessResult {
        let lat = self.l1i.hit_latency();
        self.access_backed(false, lat, addr)
    }

    /// D-cache statistics: (accesses, misses).
    pub fn dcache_stats(&self) -> (u64, u64) {
        (self.l1d.hits() + self.l1d.misses(), self.l1d.misses())
    }

    /// I-cache statistics: (accesses, misses).
    pub fn icache_stats(&self) -> (u64, u64) {
        (self.l1i.hits() + self.l1i.misses(), self.l1i.misses())
    }

    /// L2 statistics: (accesses, misses).
    pub fn l2_stats(&self) -> (u64, u64) {
        (self.l2.hits() + self.l2.misses(), self.l2.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: usize, sets_times_line: usize) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: sets_times_line * ways,
            ways,
            line_bytes: 32,
            hit_latency: 2,
        })
    }

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let mut c = small_cache(2, 128);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004), "same line");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        // Direct the accesses at a single set of a 2-way cache.
        let mut c = small_cache(2, 64); // 2 sets of 32B lines
        let sets = c.sets as u64;
        let line = 32u64;
        let a = 0;
        let b = a + sets * line;
        let d = b + sets * line;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a is now MRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn hierarchy_latencies_accumulate() {
        let config = SimConfig::hpca2005();
        let mut h = CacheHierarchy::new(&config);
        // Cold access: L1 miss, L2 miss → 2 + 10 + 50.
        let first = h.access_data(0x8000);
        assert!(first.l1_miss && first.l2_miss);
        assert_eq!(first.latency, 2 + 10 + 50);
        // Second access: L1 hit → 2.
        let second = h.access_data(0x8000);
        assert!(!second.l1_miss);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn l1_miss_l2_hit_costs_l1_plus_l2() {
        let config = SimConfig::small_for_tests();
        let mut h = CacheHierarchy::new(&config);
        // Fill L2 with the line via a first access, then evict it from L1 by
        // touching many distinct lines, then access again: L1 miss, L2 hit.
        let target = 0x40_0000u64;
        let _ = h.access_data(target);
        for i in 0..1024u64 {
            let _ = h.access_data(0x10_0000 + i * 32);
        }
        let again = h.access_data(target);
        if again.l1_miss && !again.l2_miss {
            assert_eq!(again.latency, 2 + 10);
        }
        let (acc, miss) = h.dcache_stats();
        assert!(acc >= 1026);
        assert!(miss >= 2);
    }

    #[test]
    fn instruction_and_data_paths_are_separate() {
        let config = SimConfig::hpca2005();
        let mut h = CacheHierarchy::new(&config);
        let _ = h.access_instruction(0x400000);
        let (iacc, imiss) = h.icache_stats();
        let (dacc, _) = h.dcache_stats();
        assert_eq!(iacc, 1);
        assert_eq!(imiss, 1);
        assert_eq!(dacc, 0);
    }
}
