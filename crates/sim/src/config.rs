//! Simulator configuration (Table 1 of the paper).

use sdiq_isa::{FuCounts, MachineWidths};
use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Branch predictor configuration (Table 1: hybrid 2K gshare, 2K bimodal,
/// 1K selector; 2048-entry 4-way BTB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// Entries in the gshare pattern history table.
    pub gshare_entries: usize,
    /// Entries in the bimodal table.
    pub bimodal_entries: usize,
    /// Entries in the meta/selector table.
    pub selector_entries: usize,
    /// BTB entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Extra redirect penalty (on top of front-end refill) charged when a
    /// branch resolves as mispredicted.
    pub mispredict_redirect_penalty: u32,
}

/// Issue-queue geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IssueQueueConfig {
    /// Total entries (80 in Table 1).
    pub entries: usize,
    /// Entries per bank (the multi-banked queue of §3.1; 8 per bank as in
    /// the Buyuktosunoglu-style design the paper assumes).
    pub bank_size: usize,
}

impl IssueQueueConfig {
    /// Number of banks (the single source of truth, also used by
    /// [`crate::issue_queue::IssueQueue::total_banks`]).
    pub fn banks(&self) -> usize {
        self.entries.div_ceil(self.bank_size)
    }
}

/// Register-file geometry (112 integer + 112 FP registers, 14 banks of 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegFileConfig {
    /// Physical registers per class.
    pub regs_per_class: usize,
    /// Registers per bank.
    pub bank_size: usize,
}

impl RegFileConfig {
    /// Number of banks per class.
    pub fn banks(&self) -> usize {
        self.regs_per_class.div_ceil(self.bank_size)
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimConfig {
    /// Pipeline widths and window capacities.
    pub widths: MachineWidths,
    /// Functional-unit pools.
    pub fu_counts: FuCounts,
    /// Number of decode stages between fetch and dispatch (instructions spend
    /// "several cycles being decoded" in the fetch queue, §3.2).
    pub decode_stages: u32,
    /// Fetch-queue capacity in instructions.
    pub fetch_queue_entries: usize,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (L2 miss).
    pub memory_latency: u32,
    /// Branch predictor.
    pub branch: BranchPredictorConfig,
    /// Issue queue geometry.
    pub iq: IssueQueueConfig,
    /// Integer register file geometry.
    pub int_rf: RegFileConfig,
    /// FP register file geometry.
    pub fp_rf: RegFileConfig,
}

impl SimConfig {
    /// The processor configuration of Table 1.
    pub fn hpca2005() -> Self {
        SimConfig {
            widths: MachineWidths::hpca2005(),
            fu_counts: FuCounts::hpca2005(),
            decode_stages: 3,
            fetch_queue_entries: 32,
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 32,
                hit_latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 32,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 10,
            },
            memory_latency: 50,
            branch: BranchPredictorConfig {
                gshare_entries: 2048,
                bimodal_entries: 2048,
                selector_entries: 1024,
                btb_entries: 2048,
                btb_ways: 4,
                mispredict_redirect_penalty: 2,
            },
            iq: IssueQueueConfig {
                entries: 80,
                bank_size: 8,
            },
            int_rf: RegFileConfig {
                regs_per_class: 112,
                bank_size: 8,
            },
            fp_rf: RegFileConfig {
                regs_per_class: 112,
                bank_size: 8,
            },
        }
    }

    /// A scaled-down configuration useful for fast unit tests (narrower
    /// machine, small caches). Not used by the experiments.
    pub fn small_for_tests() -> Self {
        SimConfig {
            widths: MachineWidths {
                pipeline_width: 4,
                iq_capacity: 16,
                rob_capacity: 32,
            },
            fu_counts: FuCounts {
                int_alu: 2,
                int_mul: 1,
                fp_alu: 1,
                fp_mul_div: 1,
                mem_ports: 1,
            },
            decode_stages: 2,
            fetch_queue_entries: 8,
            l1i: CacheConfig {
                size_bytes: 4 * 1024,
                ways: 2,
                line_bytes: 32,
                hit_latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 4 * 1024,
                ways: 2,
                line_bytes: 32,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 64,
                hit_latency: 10,
            },
            memory_latency: 50,
            branch: BranchPredictorConfig {
                gshare_entries: 256,
                bimodal_entries: 256,
                selector_entries: 128,
                btb_entries: 128,
                btb_ways: 2,
                mispredict_redirect_penalty: 2,
            },
            iq: IssueQueueConfig {
                entries: 16,
                bank_size: 4,
            },
            int_rf: RegFileConfig {
                regs_per_class: 48,
                bank_size: 8,
            },
            fp_rf: RegFileConfig {
                regs_per_class: 48,
                bank_size: 8,
            },
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::hpca2005()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_configuration_matches_the_paper() {
        let c = SimConfig::hpca2005();
        assert_eq!(c.widths.pipeline_width, 8);
        assert_eq!(c.widths.rob_capacity, 128);
        assert_eq!(c.widths.iq_capacity, 80);
        assert_eq!(c.iq.entries, 80);
        assert_eq!(c.iq.banks(), 10);
        assert_eq!(c.int_rf.regs_per_class, 112);
        assert_eq!(c.int_rf.banks(), 14);
        assert_eq!(c.fp_rf.banks(), 14);
        assert_eq!(c.l1i.size_bytes, 64 * 1024);
        assert_eq!(c.l1i.ways, 2);
        assert_eq!(c.l1d.ways, 4);
        assert_eq!(c.l1d.hit_latency, 2);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.hit_latency, 10);
        assert_eq!(c.memory_latency, 50);
        assert_eq!(c.branch.gshare_entries, 2048);
        assert_eq!(c.branch.bimodal_entries, 2048);
        assert_eq!(c.branch.selector_entries, 1024);
        assert_eq!(c.branch.btb_entries, 2048);
        assert_eq!(c.branch.btb_ways, 4);
        assert_eq!(c.fu_counts.int_alu, 6);
        assert_eq!(c.fu_counts.int_mul, 3);
        assert_eq!(c.fu_counts.fp_alu, 4);
        assert_eq!(c.fu_counts.fp_mul_div, 2);
    }

    #[test]
    fn cache_geometry_is_consistent() {
        let c = SimConfig::hpca2005();
        assert_eq!(c.l1i.sets(), 64 * 1024 / 32 / 2);
        assert_eq!(c.l1d.sets(), 64 * 1024 / 32 / 4);
        assert_eq!(c.l2.sets(), 512 * 1024 / 64 / 8);
    }

    #[test]
    fn small_test_config_is_self_consistent() {
        let c = SimConfig::small_for_tests();
        assert_eq!(c.iq.entries % c.iq.bank_size, 0);
        assert!(c.widths.iq_capacity <= c.widths.rob_capacity);
        assert_eq!(c.iq.entries, c.widths.iq_capacity);
    }
}
