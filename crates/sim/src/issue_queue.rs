//! The banked, non-collapsible issue queue with the paper's `new_head`
//! pointer and `max_new_range` dispatch limiting (§3.1).
//!
//! The queue is a circular buffer of `entries` slots split into banks.
//! Instructions are dispatched at `tail` in program order and issue out of
//! order, leaving holes (the queue is non-collapsible, as in Folegnani &
//! González and Buyuktosunoglu et al. — compaction would cost significant
//! energy every cycle). `head` tracks the oldest resident instruction.
//!
//! The paper adds a second pointer, `new_head`, which marks the start of the
//! *current program region*. When the compiler's hint (special NOOP or tag)
//! is processed at dispatch, `new_head` is set to `tail` and `max_new_range`
//! to the advertised number of entries: dispatch then stalls whenever the
//! region between `new_head` and `tail` already holds `max_new_range`
//! instructions. When the instruction `new_head` points at issues, the
//! pointer advances towards `tail` until it finds a non-empty slot (or
//! becomes `tail`), exactly as Figure 2 describes.
//!
//! Wakeup gating follows Folegnani & González: empty entries and already-
//! ready operands are not woken. The counters distinguish the three schemes
//! compared in Figure 8 (full wakeup, non-empty wakeup, gated wakeup).

use crate::config::IssueQueueConfig;
use crate::regfile::PhysReg;
use sdiq_isa::FuClass;

/// One resident instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntry {
    /// Identifier of the in-flight instruction (index into the pipeline's
    /// in-flight table).
    pub id: u64,
    /// Source operands and their readiness.
    pub operands: [Option<(PhysReg, bool)>; 2],
    /// Functional-unit class the instruction needs.
    pub fu: FuClass,
}

impl IqEntry {
    /// `true` once every present operand is ready.
    pub fn is_ready(&self) -> bool {
        self.operands
            .iter()
            .flatten()
            .all(|(_, ready)| *ready)
    }

    /// Number of operands still waiting for a value.
    pub fn waiting_operands(&self) -> usize {
        self.operands
            .iter()
            .flatten()
            .filter(|(_, ready)| !*ready)
            .count()
    }
}

/// Wakeup activity produced by one result broadcast.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeupActivity {
    /// Comparisons if every entry of the full queue were woken.
    pub full: u64,
    /// Comparisons if every *non-empty* entry were woken.
    pub non_empty: u64,
    /// Comparisons actually performed with empty/ready operands gated.
    pub gated: u64,
    /// Operands that matched and became ready.
    pub matches: u64,
}

/// The issue queue.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    slots: Vec<Option<IqEntry>>,
    bank_size: usize,
    head: usize,
    tail: usize,
    new_head: usize,
    count: usize,
    /// Software limit (the compiler's `max_new_range`); `None` until a hint
    /// has been seen.
    max_new_range: Option<usize>,
    /// Hardware limit on resident entries (used by the Abella-style adaptive
    /// baseline); `None` = full capacity.
    hard_limit: Option<usize>,
}

impl IssueQueue {
    /// Creates an empty queue with the given geometry.
    pub fn new(config: IssueQueueConfig) -> Self {
        IssueQueue {
            slots: vec![None; config.entries],
            bank_size: config.bank_size,
            head: 0,
            tail: 0,
            new_head: 0,
            count: 0,
            max_new_range: None,
            hard_limit: None,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of resident instructions.
    pub fn occupancy(&self) -> usize {
        self.count
    }

    /// `true` if no instruction is resident.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of banks holding at least one resident instruction.
    pub fn banks_on(&self) -> usize {
        let banks = self.total_banks();
        (0..banks)
            .filter(|b| {
                let lo = b * self.bank_size;
                let hi = ((b + 1) * self.bank_size).min(self.slots.len());
                self.slots[lo..hi].iter().any(|s| s.is_some())
            })
            .count()
    }

    /// Total number of banks.
    pub fn total_banks(&self) -> usize {
        (self.slots.len() + self.bank_size - 1) / self.bank_size
    }

    /// Applies a compiler hint: a new program region starts at the current
    /// tail and may use at most `max_new_range` entries.
    pub fn apply_hint(&mut self, max_new_range: usize) {
        self.new_head = self.tail;
        self.max_new_range = Some(max_new_range.max(1));
    }

    /// Sets (or clears) the hardware resident-entry limit used by the
    /// adaptive-baseline policy.
    pub fn set_hard_limit(&mut self, limit: Option<usize>) {
        self.hard_limit = limit.map(|l| l.clamp(1, self.capacity()));
    }

    /// Current hardware limit, if any.
    pub fn hard_limit(&self) -> Option<usize> {
        self.hard_limit
    }

    /// Current software limit, if any.
    pub fn max_new_range(&self) -> Option<usize> {
        self.max_new_range
    }

    /// Number of resident instructions in the current region
    /// (between `new_head` and `tail`).
    pub fn new_region_occupancy(&self) -> usize {
        self.count_filled_between(self.new_head, self.tail)
    }

    /// `true` if `slot` lies within the youngest bank of the usable window:
    /// its position relative to `head` falls in the last `bank_size` slots of
    /// a window of `limit` entries. The adaptive-baseline heuristic monitors
    /// how much this portion contributes to issue (Folegnani & González's
    /// "youngest portion of the queue").
    pub fn is_in_youngest_portion(&self, slot: usize, limit: usize) -> bool {
        let cap = self.capacity();
        let position = (slot + cap - self.head) % cap;
        let limit = limit.clamp(self.bank_size, cap);
        position + self.bank_size >= limit && position < limit
    }

    fn count_filled_between(&self, from: usize, to: usize) -> usize {
        let cap = self.capacity();
        let mut count = 0;
        let mut pos = from;
        // Walk at most `cap` slots from `from` (exclusive of `to`).
        let span = (to + cap - from) % cap;
        for _ in 0..span {
            if self.slots[pos].is_some() {
                count += 1;
            }
            pos = (pos + 1) % cap;
        }
        count
    }

    /// `true` if another instruction may be dispatched right now, honouring
    /// the physical capacity, the software region limit and the hardware
    /// limit.
    pub fn can_dispatch(&self) -> bool {
        // Physical capacity: the tail slot must be free, and the queue must
        // not have wrapped onto its own head.
        if self.count >= self.capacity() || self.slots[self.tail].is_some() {
            return false;
        }
        if let Some(limit) = self.hard_limit {
            if self.count >= limit {
                return false;
            }
        }
        if let Some(range) = self.max_new_range {
            if self.new_region_occupancy() >= range {
                return false;
            }
        }
        true
    }

    /// Dispatches an entry at the tail, returning its slot index.
    ///
    /// # Panics
    ///
    /// Panics if [`IssueQueue::can_dispatch`] is false.
    pub fn dispatch(&mut self, entry: IqEntry) -> usize {
        assert!(self.can_dispatch(), "dispatch called on a full or limited queue");
        let slot = self.tail;
        self.slots[slot] = Some(entry);
        self.tail = (self.tail + 1) % self.capacity();
        self.count += 1;
        slot
    }

    /// Iterates resident entries oldest-first, yielding `(slot, entry)`.
    pub fn iter_in_age_order(&self) -> impl Iterator<Item = (usize, &IqEntry)> {
        let cap = self.capacity();
        let head = self.head;
        let count = self.count;
        // Walk the whole circular span from head; stop after `count` hits.
        (0..cap)
            .map(move |off| (head + off) % cap)
            .filter_map(move |pos| self.slots[pos].as_ref().map(|e| (pos, e)))
            .take(count)
    }

    /// Removes the entry in `slot` (it issued), advancing `head` and
    /// `new_head` over empty slots as required.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already empty.
    pub fn remove(&mut self, slot: usize) {
        assert!(self.slots[slot].is_some(), "removing an empty issue-queue slot");
        self.slots[slot] = None;
        self.count -= 1;
        let cap = self.capacity();
        if self.count == 0 {
            self.head = self.tail;
            self.new_head = self.tail;
            return;
        }
        // Advance head past empty slots to the oldest resident instruction.
        // (Bounded walk: with count > 0 there is always a filled slot, and in
        // the completely-wrapped case head may legitimately step past tail.)
        let mut steps = 0;
        while self.slots[self.head].is_none() && steps < cap {
            self.head = (self.head + 1) % cap;
            steps += 1;
        }
        // Advance new_head the same way (it only ever moves towards tail).
        while self.new_head != self.tail && self.slots[self.new_head].is_none() {
            self.new_head = (self.new_head + 1) % cap;
        }
    }

    /// Marks operand readiness directly (used when a value becomes ready
    /// between rename and dispatch).
    pub fn entry_mut(&mut self, slot: usize) -> Option<&mut IqEntry> {
        self.slots[slot].as_mut()
    }

    /// Broadcasts a completed destination register to all resident entries,
    /// waking matching operands, and returns the wakeup activity under the
    /// three accounting schemes of Figure 8.
    pub fn wakeup(&mut self, dest: PhysReg) -> WakeupActivity {
        let mut activity = WakeupActivity {
            full: 2 * self.capacity() as u64,
            non_empty: 2 * self.count as u64,
            gated: 0,
            matches: 0,
        };
        for slot in self.slots.iter_mut() {
            if let Some(entry) = slot {
                for operand in entry.operands.iter_mut().flatten() {
                    if !operand.1 {
                        activity.gated += 1;
                        if operand.0 == dest {
                            operand.1 = true;
                            activity.matches += 1;
                        }
                    }
                }
            }
        }
        activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::RegClass;

    fn queue(entries: usize, bank: usize) -> IssueQueue {
        IssueQueue::new(IssueQueueConfig {
            entries,
            bank_size: bank,
        })
    }

    fn entry(id: u64, srcs: &[(usize, bool)]) -> IqEntry {
        let mut operands = [None, None];
        for (i, &(index, ready)) in srcs.iter().take(2).enumerate() {
            operands[i] = Some((
                PhysReg {
                    class: RegClass::Int,
                    index,
                },
                ready,
            ));
        }
        IqEntry {
            id,
            operands,
            fu: FuClass::IntAlu,
        }
    }

    #[test]
    fn dispatch_and_age_order() {
        let mut q = queue(8, 4);
        for id in 0..5 {
            assert!(q.can_dispatch());
            q.dispatch(entry(id, &[(1, true)]));
        }
        assert_eq!(q.occupancy(), 5);
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.banks_on(), 2);
    }

    #[test]
    fn capacity_limit_blocks_dispatch() {
        let mut q = queue(4, 4);
        for id in 0..4 {
            q.dispatch(entry(id, &[]));
        }
        assert!(!q.can_dispatch());
    }

    #[test]
    fn out_of_order_removal_leaves_holes_and_head_tracks_oldest() {
        let mut q = queue(8, 4);
        let slots: Vec<usize> = (0..4).map(|id| q.dispatch(entry(id, &[]))).collect();
        // Remove the second and third (out of order issue).
        q.remove(slots[1]);
        q.remove(slots[2]);
        assert_eq!(q.occupancy(), 2);
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![0, 3]);
        // Remove the oldest → head advances past the holes to id 3.
        q.remove(slots[0]);
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn hint_limits_new_region_dispatch_like_figure2() {
        let mut q = queue(16, 4);
        // Older region: 2 instructions already resident.
        q.dispatch(entry(0, &[]));
        q.dispatch(entry(1, &[]));
        // Compiler hint: the next region needs 4 entries.
        q.apply_hint(4);
        let mut dispatched = 0;
        while q.can_dispatch() {
            q.dispatch(entry(10 + dispatched, &[]));
            dispatched += 1;
        }
        assert_eq!(dispatched, 4, "region limited to max_new_range");
        assert_eq!(q.occupancy(), 6);
        assert_eq!(q.new_region_occupancy(), 4);
        // One of the region's instructions issues → one more may dispatch.
        let slot = q
            .iter_in_age_order()
            .find(|(_, e)| e.id == 10)
            .map(|(s, _)| s)
            .unwrap();
        q.remove(slot);
        assert!(q.can_dispatch());
        q.dispatch(entry(20, &[]));
        assert!(!q.can_dispatch());
    }

    #[test]
    fn new_head_advances_to_next_non_empty_slot() {
        let mut q = queue(16, 4);
        q.apply_hint(8);
        let slots: Vec<usize> = (0..4).map(|id| q.dispatch(entry(id, &[]))).collect();
        assert_eq!(q.new_region_occupancy(), 4);
        // Issue the middle two, then the first: new_head must skip the holes.
        q.remove(slots[1]);
        q.remove(slots[2]);
        q.remove(slots[0]);
        assert_eq!(q.new_region_occupancy(), 1);
    }

    #[test]
    fn hard_limit_caps_occupancy() {
        let mut q = queue(16, 4);
        q.set_hard_limit(Some(3));
        let mut n = 0;
        while q.can_dispatch() {
            q.dispatch(entry(n, &[]));
            n += 1;
        }
        assert_eq!(n, 3);
        q.set_hard_limit(None);
        assert!(q.can_dispatch());
    }

    #[test]
    fn wakeup_counts_follow_figure8_schemes() {
        let mut q = queue(8, 4);
        // Three resident entries: one fully ready, one with a waiting operand
        // that matches, one with two waiting operands that do not match.
        q.dispatch(entry(0, &[(1, true), (2, true)]));
        q.dispatch(entry(1, &[(5, false)]));
        q.dispatch(entry(2, &[(6, false), (7, false)]));
        let activity = q.wakeup(PhysReg {
            class: RegClass::Int,
            index: 5,
        });
        assert_eq!(activity.full, 16, "2 operands × 8 entries");
        assert_eq!(activity.non_empty, 6, "2 operands × 3 resident entries");
        assert_eq!(activity.gated, 3, "only waiting operands are compared");
        assert_eq!(activity.matches, 1);
        // The woken entry is now ready to issue.
        let ready: Vec<u64> = q
            .iter_in_age_order()
            .filter(|(_, e)| e.is_ready())
            .map(|(_, e)| e.id)
            .collect();
        assert_eq!(ready, vec![0, 1]);
    }

    #[test]
    fn wraparound_dispatch_works() {
        let mut q = queue(4, 2);
        let s0 = q.dispatch(entry(0, &[]));
        let s1 = q.dispatch(entry(1, &[]));
        q.remove(s0);
        q.remove(s1);
        // Queue empty; head == tail == 2. Fill it completely across the wrap.
        for id in 2..6 {
            assert!(q.can_dispatch());
            q.dispatch(entry(id, &[]));
        }
        assert!(!q.can_dispatch());
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5]);
    }

    #[test]
    fn banks_power_off_as_entries_drain() {
        let mut q = queue(8, 2);
        let slots: Vec<usize> = (0..8).map(|id| q.dispatch(entry(id, &[]))).collect();
        assert_eq!(q.banks_on(), 4);
        for &s in &slots[0..6] {
            q.remove(s);
        }
        assert_eq!(q.banks_on(), 1);
        assert_eq!(q.occupancy(), 2);
    }

    #[test]
    fn empty_queue_resets_pointers_to_tail() {
        let mut q = queue(8, 4);
        q.apply_hint(2);
        let s0 = q.dispatch(entry(0, &[]));
        let s1 = q.dispatch(entry(1, &[]));
        q.remove(s0);
        q.remove(s1);
        assert!(q.is_empty());
        // After draining, the full region limit is available again.
        let mut n = 0;
        while q.can_dispatch() {
            q.dispatch(entry(10 + n, &[]));
            n += 1;
        }
        assert_eq!(n, 2, "max_new_range still applies to the new region");
    }
}
