//! The banked, non-collapsible issue queue with the paper's `new_head`
//! pointer and `max_new_range` dispatch limiting (§3.1).
//!
//! The queue is a circular buffer of `entries` slots split into banks.
//! Instructions are dispatched at `tail` in program order and issue out of
//! order, leaving holes (the queue is non-collapsible, as in Folegnani &
//! González and Buyuktosunoglu et al. — compaction would cost significant
//! energy every cycle). `head` tracks the oldest resident instruction.
//!
//! The paper adds a second pointer, `new_head`, which marks the start of the
//! *current program region*. When the compiler's hint (special NOOP or tag)
//! is processed at dispatch, `new_head` is set to `tail` and `max_new_range`
//! to the advertised number of entries: dispatch then stalls whenever the
//! region between `new_head` and `tail` already holds `max_new_range`
//! instructions. When the instruction `new_head` points at issues, the
//! pointer advances towards `tail` until it finds a non-empty slot (or
//! becomes `tail`), exactly as Figure 2 describes.
//!
//! Wakeup gating follows Folegnani & González: empty entries and already-
//! ready operands are not woken. The counters distinguish the three schemes
//! compared in Figure 8 (full wakeup, non-empty wakeup, gated wakeup).
//!
//! # Performance architecture: O(actual work) per event
//!
//! Every per-cycle and per-event operation is O(useful work), never
//! O(capacity) — the software analogue of the paper's gated-wakeup insight
//! that only *waiting* operands need comparisons:
//!
//! * **Consumer index** — `waiters` maps each physical register (dense
//!   index) to the list of `(slot, operand)` pairs currently waiting on it.
//!   A result broadcast ([`IssueQueue::wakeup`]) touches exactly the
//!   matching waiting operands instead of scanning all slots; the Figure 8
//!   accounting stays exact because the incremental `waiting_total` counter
//!   is the gated-comparison count.
//! * **Incremental occupancy** — per-bank resident counts power an O(1)
//!   [`IssueQueue::banks_on`], and the current-region resident count powers
//!   an O(1) [`IssueQueue::new_region_occupancy`], so
//!   [`IssueQueue::can_dispatch`] (called up to `width` times per cycle) no
//!   longer walks the circular span.
//! * **Age ranks** — a Fenwick tree over slot occupancy answers "how many
//!   older residents precede this slot" ([`IssueQueue::age_rank`]) in
//!   O(log capacity), which the pipeline's adaptive-policy observation
//!   needs at issue.
//!
//! The original O(capacity) computations are retained as `naive_*` methods
//! under `cfg(any(test, feature = "slow-reference"))`; differential property
//! tests (`differential_tests` below) assert that the incremental state
//! always equals the naive recomputation across randomized
//! dispatch/issue/hint/wakeup/wrap sequences.

use crate::config::IssueQueueConfig;
use crate::regfile::PhysReg;
use sdiq_isa::{FuClass, RegClass};

/// One resident instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntry {
    /// Identifier of the in-flight instruction (index into the pipeline's
    /// in-flight table).
    pub id: u64,
    /// Source operands and their readiness.
    pub operands: [Option<(PhysReg, bool)>; 2],
    /// Functional-unit class the instruction needs.
    pub fu: FuClass,
}

impl IqEntry {
    /// `true` once every present operand is ready.
    pub fn is_ready(&self) -> bool {
        self.operands.iter().flatten().all(|(_, ready)| *ready)
    }

    /// Number of operands still waiting for a value.
    pub fn waiting_operands(&self) -> usize {
        self.operands
            .iter()
            .flatten()
            .filter(|(_, ready)| !*ready)
            .count()
    }
}

/// Wakeup activity produced by one result broadcast.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeupActivity {
    /// Comparisons if every entry of the full queue were woken.
    pub full: u64,
    /// Comparisons if every *non-empty* entry were woken.
    pub non_empty: u64,
    /// Comparisons actually performed with empty/ready operands gated.
    pub gated: u64,
    /// Operands that matched and became ready.
    pub matches: u64,
}

/// An entry that became fully ready during the last [`IssueQueue::wakeup`]
/// broadcast (every operand now has its value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyEvent {
    /// Slot of the now-ready entry.
    pub slot: usize,
    /// In-flight id of the now-ready entry.
    pub id: u64,
    /// Functional-unit class it needs.
    pub fu: FuClass,
}

/// One waiting operand in the consumer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiter {
    slot: u32,
    operand: u8,
}

/// Fenwick (binary indexed) tree over slot occupancy, for O(log n) age
/// ranks.
#[derive(Debug, Clone)]
struct OccupancyTree {
    tree: Vec<u32>,
}

impl OccupancyTree {
    fn new(len: usize) -> Self {
        OccupancyTree {
            tree: vec![0; len + 1],
        }
    }

    fn add(&mut self, index: usize, delta: i32) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Number of filled slots in `[0, index)`.
    fn prefix(&self, index: usize) -> usize {
        let mut sum = 0u32;
        let mut i = index;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum as usize
    }
}

/// Dense index for a physical register (interleaves the two classes).
fn dense_reg(reg: PhysReg) -> usize {
    let class_bit = match reg.class {
        RegClass::Int => 0,
        RegClass::Fp => 1,
    };
    reg.index * 2 + class_bit
}

/// The issue queue.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    slots: Vec<Option<IqEntry>>,
    config: IssueQueueConfig,
    head: usize,
    tail: usize,
    new_head: usize,
    count: usize,
    /// Software limit (the compiler's `max_new_range`); `None` until a hint
    /// has been seen.
    max_new_range: Option<usize>,
    /// Hardware limit on resident entries (used by the Abella-style adaptive
    /// baseline); `None` = full capacity.
    hard_limit: Option<usize>,

    // --- incrementally maintained state (see module docs) -------------------
    /// Residents per bank.
    bank_occupancy: Vec<u32>,
    /// Number of banks with at least one resident.
    banks_nonempty: usize,
    /// Filled slots in the circular window `[new_head, tail)`.
    region_count: usize,
    /// Waiting (not-yet-ready) operands across all residents.
    waiting_total: u64,
    /// Consumer index: dense register -> operands waiting on it.
    waiters: Vec<Vec<Waiter>>,
    /// Slot occupancy Fenwick tree for age ranks.
    occupancy_tree: OccupancyTree,
    /// Entries that became fully ready in the last `wakeup` call.
    newly_ready: Vec<ReadyEvent>,
}

impl IssueQueue {
    /// Creates an empty queue with the given geometry.
    pub fn new(config: IssueQueueConfig) -> Self {
        IssueQueue {
            slots: vec![None; config.entries],
            head: 0,
            tail: 0,
            new_head: 0,
            count: 0,
            max_new_range: None,
            hard_limit: None,
            bank_occupancy: vec![0; config.banks()],
            banks_nonempty: 0,
            region_count: 0,
            waiting_total: 0,
            waiters: Vec::new(),
            occupancy_tree: OccupancyTree::new(config.entries),
            newly_ready: Vec::new(),
            config,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of resident instructions.
    pub fn occupancy(&self) -> usize {
        self.count
    }

    /// `true` if no instruction is resident.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of banks holding at least one resident instruction. O(1).
    pub fn banks_on(&self) -> usize {
        self.banks_nonempty
    }

    /// Total number of banks (one source of truth:
    /// [`IssueQueueConfig::banks`]).
    pub fn total_banks(&self) -> usize {
        self.config.banks()
    }

    /// Applies a compiler hint: a new program region starts at the current
    /// tail and may use at most `max_new_range` entries.
    pub fn apply_hint(&mut self, max_new_range: usize) {
        self.new_head = self.tail;
        self.region_count = 0;
        self.max_new_range = Some(max_new_range.max(1));
    }

    /// Sets (or clears) the hardware resident-entry limit used by the
    /// adaptive-baseline policy.
    pub fn set_hard_limit(&mut self, limit: Option<usize>) {
        self.hard_limit = limit.map(|l| l.clamp(1, self.capacity()));
    }

    /// Current hardware limit, if any.
    pub fn hard_limit(&self) -> Option<usize> {
        self.hard_limit
    }

    /// Current software limit, if any.
    pub fn max_new_range(&self) -> Option<usize> {
        self.max_new_range
    }

    /// Number of resident instructions in the current region
    /// (between `new_head` and `tail`). O(1).
    pub fn new_region_occupancy(&self) -> usize {
        self.region_count
    }

    /// Circular distance from `from` to `to` (both `< capacity`), avoiding
    /// an integer division on the hot path.
    #[inline]
    fn circular_distance(&self, from: usize, to: usize) -> usize {
        let cap = self.capacity();
        let diff = to + cap - from;
        if diff >= cap {
            diff - cap
        } else {
            diff
        }
    }

    /// `slot + 1` with wraparound.
    #[inline]
    fn next_slot(&self, slot: usize) -> usize {
        let next = slot + 1;
        if next == self.capacity() {
            0
        } else {
            next
        }
    }

    /// `true` if `slot` lies in the circular window `[new_head, tail)`.
    fn in_region(&self, slot: usize) -> bool {
        self.circular_distance(self.new_head, slot)
            < self.circular_distance(self.new_head, self.tail)
    }

    /// `true` if `slot` lies within the youngest bank of the usable window:
    /// its position relative to `head` falls in the last `bank_size` slots of
    /// a window of `limit` entries. The adaptive-baseline heuristic monitors
    /// how much this portion contributes to issue (Folegnani & González's
    /// "youngest portion of the queue").
    pub fn is_in_youngest_portion(&self, slot: usize, limit: usize) -> bool {
        let position = self.circular_distance(self.head, slot);
        let limit = limit.clamp(self.config.bank_size, self.capacity());
        position + self.config.bank_size >= limit && position < limit
    }

    /// Number of resident entries older than the one in `slot` — the entry's
    /// position in age order. O(log capacity) via the occupancy tree.
    pub fn age_rank(&self, slot: usize) -> usize {
        if slot >= self.head {
            self.occupancy_tree.prefix(slot) - self.occupancy_tree.prefix(self.head)
        } else {
            self.occupancy_tree.prefix(self.capacity()) - self.occupancy_tree.prefix(self.head)
                + self.occupancy_tree.prefix(slot)
        }
    }

    /// `true` if another instruction may be dispatched right now, honouring
    /// the physical capacity, the software region limit and the hardware
    /// limit. O(1).
    pub fn can_dispatch(&self) -> bool {
        // Physical capacity: the tail slot must be free, and the queue must
        // not have wrapped onto its own head.
        if self.count >= self.capacity() || self.slots[self.tail].is_some() {
            return false;
        }
        if let Some(limit) = self.hard_limit {
            if self.count >= limit {
                return false;
            }
        }
        if let Some(range) = self.max_new_range {
            if self.region_count >= range {
                return false;
            }
        }
        true
    }

    /// Dispatches an entry at the tail, returning its slot index.
    ///
    /// # Panics
    ///
    /// Panics if [`IssueQueue::can_dispatch`] is false.
    pub fn dispatch(&mut self, entry: IqEntry) -> usize {
        assert!(
            self.can_dispatch(),
            "dispatch called on a full or limited queue"
        );
        let slot = self.tail;
        // Consumer index: register every waiting operand.
        for (operand_idx, operand) in entry.operands.iter().enumerate() {
            if let Some((reg, ready)) = operand {
                if !ready {
                    let key = dense_reg(*reg);
                    if key >= self.waiters.len() {
                        self.waiters.resize_with(key + 1, Vec::new);
                    }
                    self.waiters[key].push(Waiter {
                        slot: slot as u32,
                        operand: operand_idx as u8,
                    });
                    self.waiting_total += 1;
                }
            }
        }
        self.slots[slot] = Some(entry);
        self.occupancy_tree.add(slot, 1);
        let bank = slot / self.config.bank_size;
        self.bank_occupancy[bank] += 1;
        if self.bank_occupancy[bank] == 1 {
            self.banks_nonempty += 1;
        }
        self.tail = self.next_slot(self.tail);
        self.count += 1;
        // Region accounting: the new resident joins the window unless the
        // tail wrapped all the way around onto `new_head`, which collapses
        // the window to an empty span (matching the modular-span
        // definition of `new_region_occupancy`).
        if self.tail == self.new_head {
            self.region_count = 0;
        } else {
            self.region_count += 1;
        }
        slot
    }

    /// Iterates resident entries oldest-first, yielding `(slot, entry)`.
    pub fn iter_in_age_order(&self) -> impl Iterator<Item = (usize, &IqEntry)> {
        let cap = self.capacity();
        let head = self.head;
        let count = self.count;
        // Walk the whole circular span from head; stop after `count` hits.
        (0..cap)
            .map(move |off| (head + off) % cap)
            .filter_map(move |pos| self.slots[pos].as_ref().map(|e| (pos, e)))
            .take(count)
    }

    /// Removes the entry in `slot` (it issued), advancing `head` and
    /// `new_head` over empty slots as required.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already empty.
    pub fn remove(&mut self, slot: usize) {
        let entry = self.slots[slot]
            .take()
            .expect("removing an empty issue-queue slot");
        // Consumer index: drop any still-waiting operands of this entry.
        for (operand_idx, operand) in entry.operands.iter().enumerate() {
            if let Some((reg, false)) = operand {
                let key = dense_reg(*reg);
                let list = &mut self.waiters[key];
                let position = list
                    .iter()
                    .position(|w| w.slot as usize == slot && w.operand as usize == operand_idx)
                    .expect("waiting operand is indexed");
                list.swap_remove(position);
                self.waiting_total -= 1;
            }
        }
        if self.in_region(slot) {
            self.region_count -= 1;
        }
        self.occupancy_tree.add(slot, -1);
        let bank = slot / self.config.bank_size;
        self.bank_occupancy[bank] -= 1;
        if self.bank_occupancy[bank] == 0 {
            self.banks_nonempty -= 1;
        }
        self.count -= 1;
        let cap = self.capacity();
        if self.count == 0 {
            self.head = self.tail;
            self.new_head = self.tail;
            self.region_count = 0;
            return;
        }
        // Advance head to the oldest resident instruction. With count > 0 a
        // filled slot always exists, so walking every slot at most once
        // provably terminates *on a filled slot* (the seed's bounded walk
        // could end the loop with head still on an empty slot after exactly
        // `cap` steps).
        let mut found = false;
        for _ in 0..cap {
            if self.slots[self.head].is_some() {
                found = true;
                break;
            }
            self.head = self.next_slot(self.head);
        }
        debug_assert!(found, "count > 0 implies a filled slot");
        // Advance new_head the same way (it only ever moves towards tail).
        while self.new_head != self.tail && self.slots[self.new_head].is_none() {
            self.new_head = self.next_slot(self.new_head);
        }
    }

    /// Broadcasts a completed destination register, waking exactly the
    /// operands waiting on it (consumer index — O(matches), not
    /// O(capacity)), and returns the wakeup activity under the three
    /// accounting schemes of Figure 8. Entries that became fully ready are
    /// reported by [`IssueQueue::newly_ready`] until the next broadcast.
    pub fn wakeup(&mut self, dest: PhysReg) -> WakeupActivity {
        let mut activity = WakeupActivity {
            full: 2 * self.capacity() as u64,
            non_empty: 2 * self.count as u64,
            // Every waiting operand in the queue performs one gated
            // comparison against the broadcast tag.
            gated: self.waiting_total,
            matches: 0,
        };
        self.newly_ready.clear();
        let key = dense_reg(dest);
        if key >= self.waiters.len() {
            return activity;
        }
        // Take the list out to release the borrow on `self.waiters`; it is
        // put back (cleared, capacity retained) afterwards.
        let mut woken = std::mem::take(&mut self.waiters[key]);
        for waiter in &woken {
            let entry = self.slots[waiter.slot as usize]
                .as_mut()
                .expect("indexed waiter refers to a resident entry");
            let operand = entry.operands[waiter.operand as usize]
                .as_mut()
                .expect("indexed waiter refers to a present operand");
            debug_assert_eq!(operand.0, dest);
            debug_assert!(!operand.1, "indexed operand is waiting");
            operand.1 = true;
            activity.matches += 1;
            self.waiting_total -= 1;
            if entry.is_ready() {
                self.newly_ready.push(ReadyEvent {
                    slot: waiter.slot as usize,
                    id: entry.id,
                    fu: entry.fu,
                });
            }
        }
        woken.clear();
        self.waiters[key] = woken;
        activity
    }

    /// Entries that became fully ready during the last [`IssueQueue::wakeup`]
    /// broadcast.
    pub fn newly_ready(&self) -> &[ReadyEvent] {
        &self.newly_ready
    }
}

/// O(capacity) reference implementations of the incrementally maintained
/// state, retained for differential testing (and available to external
/// consumers through the `slow-reference` feature).
#[cfg(any(test, feature = "slow-reference"))]
impl IssueQueue {
    /// Reference recomputation of [`IssueQueue::banks_on`].
    pub fn naive_banks_on(&self) -> usize {
        let banks = self.total_banks();
        (0..banks)
            .filter(|b| {
                let lo = b * self.config.bank_size;
                let hi = ((b + 1) * self.config.bank_size).min(self.slots.len());
                self.slots[lo..hi].iter().any(|s| s.is_some())
            })
            .count()
    }

    /// Reference recomputation of [`IssueQueue::new_region_occupancy`]: the
    /// original circular walk over the span `[new_head, tail)`.
    pub fn naive_new_region_occupancy(&self) -> usize {
        let cap = self.capacity();
        let mut count = 0;
        let mut pos = self.new_head;
        let span = (self.tail + cap - self.new_head) % cap;
        for _ in 0..span {
            if self.slots[pos].is_some() {
                count += 1;
            }
            pos = (pos + 1) % cap;
        }
        count
    }

    /// Reference recomputation of the total waiting-operand count (the
    /// gated-comparison cost of one broadcast).
    pub fn naive_waiting_total(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|e| e.waiting_operands() as u64)
            .sum()
    }

    /// Reference recomputation of [`IssueQueue::age_rank`] by walking the
    /// age-order iterator.
    pub fn naive_age_rank(&self, slot: usize) -> usize {
        self.iter_in_age_order()
            .position(|(s, _)| s == slot)
            .expect("slot is resident")
    }

    /// Reference wakeup: the original full-slot scan. Returns the activity
    /// and the set of woken (slot, operand) pairs for comparison.
    pub fn naive_wakeup(&mut self, dest: PhysReg) -> WakeupActivity {
        let mut activity = WakeupActivity {
            full: 2 * self.capacity() as u64,
            non_empty: 2 * self.count as u64,
            gated: 0,
            matches: 0,
        };
        for entry in self.slots.iter_mut().flatten() {
            for operand in entry.operands.iter_mut().flatten() {
                if !operand.1 {
                    activity.gated += 1;
                    if operand.0 == dest {
                        operand.1 = true;
                        activity.matches += 1;
                    }
                }
            }
        }
        activity
    }

    /// Asserts every incremental counter equals its naive recomputation.
    pub fn assert_consistent(&self) {
        assert_eq!(self.banks_on(), self.naive_banks_on(), "banks_on");
        assert_eq!(
            self.new_region_occupancy(),
            self.naive_new_region_occupancy(),
            "new_region_occupancy"
        );
        assert_eq!(
            self.waiting_total,
            self.naive_waiting_total(),
            "waiting_total"
        );
        assert_eq!(self.count, self.slots.iter().flatten().count(), "occupancy");
        for (slot, _) in self.iter_in_age_order() {
            assert_eq!(
                self.age_rank(slot),
                self.naive_age_rank(slot),
                "age_rank({slot})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::RegClass;

    fn queue(entries: usize, bank: usize) -> IssueQueue {
        IssueQueue::new(IssueQueueConfig {
            entries,
            bank_size: bank,
        })
    }

    fn entry(id: u64, srcs: &[(usize, bool)]) -> IqEntry {
        let mut operands = [None, None];
        for (i, &(index, ready)) in srcs.iter().take(2).enumerate() {
            operands[i] = Some((
                PhysReg {
                    class: RegClass::Int,
                    index,
                },
                ready,
            ));
        }
        IqEntry {
            id,
            operands,
            fu: FuClass::IntAlu,
        }
    }

    fn int_reg(index: usize) -> PhysReg {
        PhysReg {
            class: RegClass::Int,
            index,
        }
    }

    #[test]
    fn dispatch_and_age_order() {
        let mut q = queue(8, 4);
        for id in 0..5 {
            assert!(q.can_dispatch());
            q.dispatch(entry(id, &[(1, true)]));
        }
        assert_eq!(q.occupancy(), 5);
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.banks_on(), 2);
        q.assert_consistent();
    }

    #[test]
    fn capacity_limit_blocks_dispatch() {
        let mut q = queue(4, 4);
        for id in 0..4 {
            q.dispatch(entry(id, &[]));
        }
        assert!(!q.can_dispatch());
    }

    #[test]
    fn out_of_order_removal_leaves_holes_and_head_tracks_oldest() {
        let mut q = queue(8, 4);
        let slots: Vec<usize> = (0..4).map(|id| q.dispatch(entry(id, &[]))).collect();
        // Remove the second and third (out of order issue).
        q.remove(slots[1]);
        q.remove(slots[2]);
        assert_eq!(q.occupancy(), 2);
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![0, 3]);
        // Remove the oldest → head advances past the holes to id 3.
        q.remove(slots[0]);
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![3]);
        q.assert_consistent();
    }

    #[test]
    fn hint_limits_new_region_dispatch_like_figure2() {
        let mut q = queue(16, 4);
        // Older region: 2 instructions already resident.
        q.dispatch(entry(0, &[]));
        q.dispatch(entry(1, &[]));
        // Compiler hint: the next region needs 4 entries.
        q.apply_hint(4);
        let mut dispatched = 0;
        while q.can_dispatch() {
            q.dispatch(entry(10 + dispatched, &[]));
            dispatched += 1;
        }
        assert_eq!(dispatched, 4, "region limited to max_new_range");
        assert_eq!(q.occupancy(), 6);
        assert_eq!(q.new_region_occupancy(), 4);
        // One of the region's instructions issues → one more may dispatch.
        let slot = q
            .iter_in_age_order()
            .find(|(_, e)| e.id == 10)
            .map(|(s, _)| s)
            .unwrap();
        q.remove(slot);
        assert!(q.can_dispatch());
        q.dispatch(entry(20, &[]));
        assert!(!q.can_dispatch());
        q.assert_consistent();
    }

    #[test]
    fn new_head_advances_to_next_non_empty_slot() {
        let mut q = queue(16, 4);
        q.apply_hint(8);
        let slots: Vec<usize> = (0..4).map(|id| q.dispatch(entry(id, &[]))).collect();
        assert_eq!(q.new_region_occupancy(), 4);
        // Issue the middle two, then the first: new_head must skip the holes.
        q.remove(slots[1]);
        q.remove(slots[2]);
        q.remove(slots[0]);
        assert_eq!(q.new_region_occupancy(), 1);
        q.assert_consistent();
    }

    #[test]
    fn hard_limit_caps_occupancy() {
        let mut q = queue(16, 4);
        q.set_hard_limit(Some(3));
        let mut n = 0;
        while q.can_dispatch() {
            q.dispatch(entry(n, &[]));
            n += 1;
        }
        assert_eq!(n, 3);
        q.set_hard_limit(None);
        assert!(q.can_dispatch());
    }

    #[test]
    fn wakeup_counts_follow_figure8_schemes() {
        let mut q = queue(8, 4);
        // Three resident entries: one fully ready, one with a waiting operand
        // that matches, one with two waiting operands that do not match.
        q.dispatch(entry(0, &[(1, true), (2, true)]));
        q.dispatch(entry(1, &[(5, false)]));
        q.dispatch(entry(2, &[(6, false), (7, false)]));
        let activity = q.wakeup(int_reg(5));
        assert_eq!(activity.full, 16, "2 operands × 8 entries");
        assert_eq!(activity.non_empty, 6, "2 operands × 3 resident entries");
        assert_eq!(activity.gated, 3, "only waiting operands are compared");
        assert_eq!(activity.matches, 1);
        // The woken entry is reported ready to issue.
        assert_eq!(q.newly_ready().len(), 1);
        assert_eq!(q.newly_ready()[0].id, 1);
        let ready: Vec<u64> = q
            .iter_in_age_order()
            .filter(|(_, e)| e.is_ready())
            .map(|(_, e)| e.id)
            .collect();
        assert_eq!(ready, vec![0, 1]);
        q.assert_consistent();
    }

    #[test]
    fn wakeup_wakes_both_operands_of_one_entry_once() {
        let mut q = queue(8, 4);
        // Both operands wait on the same register: the broadcast must count
        // two matches but report the entry ready exactly once.
        q.dispatch(entry(0, &[(9, false), (9, false)]));
        let activity = q.wakeup(int_reg(9));
        assert_eq!(activity.matches, 2);
        assert_eq!(activity.gated, 2);
        assert_eq!(q.newly_ready().len(), 1);
        assert_eq!(q.newly_ready()[0].id, 0);
        q.assert_consistent();
    }

    #[test]
    fn wakeup_of_unwaited_register_matches_nothing() {
        let mut q = queue(8, 4);
        q.dispatch(entry(0, &[(3, false)]));
        let activity = q.wakeup(int_reg(4));
        assert_eq!(activity.matches, 0);
        assert_eq!(activity.gated, 1, "the waiting operand still compares");
        assert!(q.newly_ready().is_empty());
        q.assert_consistent();
    }

    #[test]
    fn removal_drops_waiting_operands_from_the_index() {
        let mut q = queue(8, 4);
        let slot = q.dispatch(entry(0, &[(5, false)]));
        q.remove(slot);
        // The waiter was dropped with its entry: a later broadcast matches
        // nothing and the gated count is zero.
        let activity = q.wakeup(int_reg(5));
        assert_eq!(activity.matches, 0);
        assert_eq!(activity.gated, 0);
        q.assert_consistent();
    }

    #[test]
    fn wraparound_dispatch_works() {
        let mut q = queue(4, 2);
        let s0 = q.dispatch(entry(0, &[]));
        let s1 = q.dispatch(entry(1, &[]));
        q.remove(s0);
        q.remove(s1);
        // Queue empty; head == tail == 2. Fill it completely across the wrap.
        for id in 2..6 {
            assert!(q.can_dispatch());
            q.dispatch(entry(id, &[]));
        }
        assert!(!q.can_dispatch());
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5]);
        q.assert_consistent();
    }

    /// Regression test for the seed's head-advance walk: with the queue
    /// fully wrapped (head == tail, every slot filled), removing entries in
    /// an order that leaves the head slot empty must land `head` on the
    /// oldest *filled* slot, never on an empty one.
    #[test]
    fn full_wrap_removal_keeps_head_on_a_filled_slot() {
        let mut q = queue(4, 2);
        // Advance head/tail to slot 2, then fill completely (wraps to
        // head == tail == 2 with count == 4).
        let s0 = q.dispatch(entry(0, &[]));
        let s1 = q.dispatch(entry(1, &[]));
        q.remove(s0);
        q.remove(s1);
        let slots: Vec<usize> = (2..6).map(|id| q.dispatch(entry(id, &[]))).collect();
        assert_eq!(q.occupancy(), 4);
        // Remove the head entry (id 2) and the one after the wrap (id 4):
        // head must walk across the wrap boundary over the hole at slot 0
        // and stop on id 3's slot.
        q.remove(slots[0]);
        q.remove(slots[2]);
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![3, 5]);
        // Remove id 3 → head crosses the wrap to id 5's slot.
        q.remove(slots[1]);
        let ids: Vec<u64> = q.iter_in_age_order().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![5]);
        q.assert_consistent();
        // Drain to empty and refill across the wrap again.
        q.remove(slots[3]);
        assert!(q.is_empty());
        for id in 10..14 {
            assert!(q.can_dispatch());
            q.dispatch(entry(id, &[]));
        }
        assert_eq!(q.occupancy(), 4);
        q.assert_consistent();
    }

    #[test]
    fn banks_power_off_as_entries_drain() {
        let mut q = queue(8, 2);
        let slots: Vec<usize> = (0..8).map(|id| q.dispatch(entry(id, &[]))).collect();
        assert_eq!(q.banks_on(), 4);
        for &s in &slots[0..6] {
            q.remove(s);
        }
        assert_eq!(q.banks_on(), 1);
        assert_eq!(q.occupancy(), 2);
        q.assert_consistent();
    }

    #[test]
    fn empty_queue_resets_pointers_to_tail() {
        let mut q = queue(8, 4);
        q.apply_hint(2);
        let s0 = q.dispatch(entry(0, &[]));
        let s1 = q.dispatch(entry(1, &[]));
        q.remove(s0);
        q.remove(s1);
        assert!(q.is_empty());
        // After draining, the full region limit is available again.
        let mut n = 0;
        while q.can_dispatch() {
            q.dispatch(entry(10 + n, &[]));
            n += 1;
        }
        assert_eq!(n, 2, "max_new_range still applies to the new region");
    }

    #[test]
    fn age_rank_matches_age_order_position() {
        let mut q = queue(8, 4);
        let slots: Vec<usize> = (0..6).map(|id| q.dispatch(entry(id, &[]))).collect();
        q.remove(slots[1]);
        q.remove(slots[3]);
        for (expected, (slot, _)) in q.iter_in_age_order().enumerate() {
            assert_eq!(q.age_rank(slot), expected);
        }
        q.assert_consistent();
    }
}

/// Differential property tests: random dispatch / remove / wakeup / hint /
/// wrap sequences, asserting after every step that the incremental counters
/// equal the naive O(capacity) recomputations and that the consumer-index
/// wakeup behaves exactly like the reference full-slot scan.
#[cfg(test)]
mod differential_tests {
    use super::*;
    use proptest::prelude::*;
    use sdiq_isa::RegClass;

    const REG_UNIVERSE: usize = 24;

    /// One step of the randomized workload. Values are interpreted modulo
    /// the currently applicable domain so that every sequence is valid.
    #[derive(Debug, Clone)]
    enum Step {
        /// Dispatch with up to two operands: (reg, ready) per operand.
        Dispatch(Option<(usize, bool)>, Option<(usize, bool)>),
        /// Remove the k-th resident entry (in age order).
        RemoveNth(usize),
        /// Broadcast a register.
        Wakeup(usize),
        /// Apply a software hint.
        Hint(usize),
        /// Set or clear the hardware limit.
        HardLimit(Option<usize>),
    }

    fn arb_operand() -> impl Strategy<Value = Option<(usize, bool)>> {
        prop_oneof![
            (0usize..3usize).prop_map(|_| None),
            ((0usize..REG_UNIVERSE), (0usize..4usize)).prop_map(|(reg, r)| Some((reg, r == 0))),
        ]
    }

    fn arb_step() -> impl Strategy<Value = Step> {
        prop_oneof![
            (arb_operand(), arb_operand()).prop_map(|(a, b)| Step::Dispatch(a, b)),
            (0usize..64usize).prop_map(Step::RemoveNth),
            (0usize..REG_UNIVERSE).prop_map(Step::Wakeup),
            (1usize..12usize).prop_map(Step::Hint),
            (0usize..20usize).prop_map(|v| {
                if v == 0 {
                    Step::HardLimit(None)
                } else {
                    Step::HardLimit(Some(v))
                }
            }),
        ]
    }

    fn reg(index: usize) -> PhysReg {
        PhysReg {
            class: if index.is_multiple_of(5) {
                RegClass::Fp
            } else {
                RegClass::Int
            },
            index,
        }
    }

    fn run_sequence(entries: usize, bank: usize, steps: &[Step]) -> Result<(), String> {
        let config = IssueQueueConfig {
            entries,
            bank_size: bank,
        };
        let mut fast = IssueQueue::new(config);
        // Shadow queue driven through the same mutations, woken with the
        // naive reference scan instead of the consumer index.
        let mut shadow = IssueQueue::new(config);
        let mut next_id = 0u64;
        for step in steps {
            match step {
                Step::Dispatch(a, b) => {
                    if !fast.can_dispatch() {
                        prop_assert!(!shadow.can_dispatch());
                        continue;
                    }
                    let mut operands = [None, None];
                    for (i, op) in [a, b].into_iter().enumerate() {
                        if let Some((r, ready)) = op {
                            operands[i] = Some((reg(*r), *ready));
                        }
                    }
                    let entry = IqEntry {
                        id: next_id,
                        operands,
                        fu: FuClass::IntAlu,
                    };
                    next_id += 1;
                    let slot = fast.dispatch(entry);
                    let shadow_slot = shadow.dispatch(entry);
                    prop_assert_eq!(slot, shadow_slot);
                }
                Step::RemoveNth(k) => {
                    if fast.is_empty() {
                        continue;
                    }
                    let k = k % fast.occupancy();
                    let slot = fast
                        .iter_in_age_order()
                        .nth(k)
                        .map(|(s, _)| s)
                        .expect("k < occupancy");
                    fast.remove(slot);
                    shadow.remove(slot);
                }
                Step::Wakeup(r) => {
                    let fast_activity = fast.wakeup(reg(*r));
                    let shadow_activity = shadow.naive_wakeup(reg(*r));
                    prop_assert_eq!(fast_activity, shadow_activity);
                    // Newly-ready events name exactly the entries the scan
                    // made ready.
                    for event in fast.newly_ready() {
                        let entry = fast
                            .iter_in_age_order()
                            .find(|(s, _)| *s == event.slot)
                            .map(|(_, e)| *e)
                            .expect("event refers to a resident entry");
                        prop_assert!(entry.is_ready());
                        prop_assert_eq!(entry.id, event.id);
                    }
                }
                Step::Hint(range) => {
                    fast.apply_hint(*range);
                    shadow.apply_hint(*range);
                }
                Step::HardLimit(limit) => {
                    fast.set_hard_limit(*limit);
                    shadow.set_hard_limit(*limit);
                }
            }
            fast.assert_consistent();
            // The two queues stay bit-identical in content.
            prop_assert_eq!(fast.occupancy(), shadow.occupancy());
            prop_assert_eq!(
                fast.new_region_occupancy(),
                shadow.naive_new_region_occupancy()
            );
            prop_assert_eq!(fast.banks_on(), shadow.naive_banks_on());
            let fast_entries: Vec<(usize, IqEntry)> =
                fast.iter_in_age_order().map(|(s, e)| (s, *e)).collect();
            let shadow_entries: Vec<(usize, IqEntry)> =
                shadow.iter_in_age_order().map(|(s, e)| (s, *e)).collect();
            prop_assert_eq!(fast_entries, shadow_entries);
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn incremental_state_equals_naive_recomputation(
            steps in prop::collection::vec(arb_step(), 1..120),
            geometry in (0usize..3usize),
        ) {
            // Small capacities maximise wrap-around coverage.
            let (entries, bank) = [(8, 4), (12, 3), (16, 8)][geometry];
            run_sequence(entries, bank, &steps)?;
        }
    }
}
