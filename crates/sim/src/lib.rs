//! # sdiq-sim — cycle-level out-of-order superscalar simulator
//!
//! The paper evaluates its technique on SimpleScalar/Wattch configured as in
//! its Table 1. Neither tool is available to this reproduction, so this crate
//! provides the machine model from scratch:
//!
//! * [`config::SimConfig::hpca2005`] — the exact Table 1 configuration:
//!   8-wide pipeline, 128-entry ROB, 80-entry issue queue (10 banks of 8),
//!   112+112 physical registers (14 banks of 8), hybrid 2K gshare / 2K
//!   bimodal / 1K selector predictor with a 2048-entry 4-way BTB, 64 KB L1
//!   caches, 512 KB L2, and the functional-unit pools and latencies of the
//!   paper,
//! * [`issue_queue::IssueQueue`] — the banked, non-collapsible queue with the
//!   paper's `new_head` pointer and `max_new_range` dispatch limiting, plus
//!   Folegnani-style wakeup gating accounting,
//! * [`regfile::RenamedRegFile`] — renaming onto banked physical register
//!   files with bank-level activity tracking,
//! * [`resize`] — the resizing policies: fixed (baseline), software hints
//!   (the paper's technique) and an adaptive hardware controller standing in
//!   for Abella & González's IqRob comparator,
//! * [`pipeline::Simulator`] — the trace-driven cycle loop producing the
//!   [`stats::ActivityStats`] that the power model consumes.
//!
//! # Example
//!
//! ```
//! use sdiq_isa::builder::ProgramBuilder;
//! use sdiq_isa::reg::int_reg;
//! use sdiq_isa::Executor;
//! use sdiq_sim::{ResizePolicy, SimConfig, Simulator};
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.procedure("main");
//! {
//!     let p = b.proc_mut(main);
//!     let entry = p.block();
//!     let body = p.block();
//!     let exit = p.block();
//!     p.with_block(entry, |bb| {
//!         bb.li(int_reg(1), 0);
//!         bb.jump(body);
//!     });
//!     p.with_block(body, |bb| {
//!         bb.addi(int_reg(2), int_reg(1), 3);
//!         bb.addi(int_reg(1), int_reg(1), 1);
//!         bb.blt(int_reg(1), 100, body, exit);
//!     });
//!     p.with_block(exit, |bb| { bb.ret(); });
//!     p.set_entry(entry);
//! }
//! let program = b.finish(main).unwrap();
//! let trace = Executor::new(&program).run(100_000).unwrap();
//!
//! let result = Simulator::new(SimConfig::hpca2005(), &program, &trace, ResizePolicy::Fixed)
//!     .run()
//!     .unwrap();
//! assert!(result.stats.ipc() > 0.0);
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod issue_queue;
pub mod pipeline;
pub mod plan;
mod plan_queue;
pub mod regfile;
pub mod resize;
pub mod stats;

pub use config::{BranchPredictorConfig, CacheConfig, IssueQueueConfig, RegFileConfig, SimConfig};
pub use pipeline::{SimError, SimResult, Simulator};
pub use plan::{ExecPlan, InstRecord, PlanSimulator};
pub use resize::{AdaptiveConfig, AdaptiveController, ResizePolicy};
pub use stats::ActivityStats;
