//! The cycle-level out-of-order pipeline.
//!
//! The simulator is trace-driven: the functional executor
//! ([`sdiq_isa::Executor`]) provides the committed dynamic instruction
//! stream, and this model replays it through an 8-wide out-of-order pipeline
//! with the Table 1 configuration, adding timing effects:
//!
//! * fetch through the I-cache with hybrid branch prediction and a BTB;
//!   fetch stalls at a mispredicted branch until it resolves (plus a
//!   redirect penalty), which is the standard trace-driven approximation of
//!   wrong-path execution,
//! * a multi-cycle decode pipeline feeding the fetch queue (§3.2),
//! * dispatch with register renaming onto the banked physical register
//!   files, special-NOOP stripping at the final decode stage (hints consume
//!   a dispatch slot, §5.2.1), instruction-tag processing, and the
//!   `new_head` / `max_new_range` dispatch limit,
//! * wakeup/select issue from the banked non-collapsible issue queue with
//!   per-class functional-unit arbitration,
//! * execution latencies per Table 1 and a two-level data-cache hierarchy,
//! * in-order commit from a 128-entry ROB.
//!
//! Every structure feeds the activity counters in [`crate::stats`], which the
//! power model consumes.

use crate::branch::BranchPredictor;
use crate::cache::CacheHierarchy;
use crate::config::SimConfig;
use crate::issue_queue::{IqEntry, IssueQueue};
use crate::regfile::{PhysReg, RenamedRegFile};
use crate::resize::{AdaptiveController, AdaptiveObservation, ResizePolicy};
use crate::stats::ActivityStats;
use sdiq_isa::{FuClass, Opcode, Program, RegClass, Trace};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Errors a simulation can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline stopped making progress (indicates a model bug; the
    /// message carries diagnostic state).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Human-readable diagnostic.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "pipeline deadlock at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Activity counters for the run.
    pub stats: ActivityStats,
    /// Resize decisions taken by the adaptive controller (0 unless the
    /// adaptive policy was used).
    pub adaptive_resizes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    InIssueQueue,
    Executing,
    Completed,
}

#[derive(Debug, Clone)]
struct InFlight {
    trace_idx: usize,
    opcode: Opcode,
    dest: Option<PhysReg>,
    /// Previous mapping of the destination architectural register, released
    /// at commit.
    prev_dest: Option<PhysReg>,
    srcs: [Option<PhysReg>; 2],
    mem_addr: Option<u64>,
    mispredicted: bool,
    state: InstState,
    iq_slot: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct FetchedInst {
    trace_idx: usize,
    decode_ready: u64,
    mispredicted: bool,
}

/// The trace-driven out-of-order pipeline simulator.
///
/// Create one per run with [`Simulator::new`] and call [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator<'a> {
    config: SimConfig,
    program: &'a Program,
    trace: &'a Trace,
    policy: ResizePolicy,

    caches: CacheHierarchy,
    bpred: BranchPredictor,
    iq: IssueQueue,
    int_rf: RenamedRegFile,
    fp_rf: RenamedRegFile,
    adaptive: Option<AdaptiveController>,

    fetch_queue: VecDeque<FetchedInst>,
    next_fetch: usize,
    fetch_stalled_until: u64,
    /// Trace index of the unresolved mispredicted branch blocking fetch.
    fetch_blocked_by: Option<usize>,
    last_fetched_line: Option<u64>,

    rob: VecDeque<u64>,
    rob_limit: usize,
    inflight: HashMap<u64, InFlight>,
    next_id: u64,
    completions: BTreeMap<u64, Vec<u64>>,
    /// Hint NOOPs stripped during the current dispatch step; they count
    /// towards trace progress but not towards committed instructions.
    strip_count_this_cycle: usize,

    stats: ActivityStats,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `program` / `trace` under `config` and
    /// `policy`. The trace must have been produced by executing exactly this
    /// program (instruction locations are looked up in it).
    pub fn new(
        config: SimConfig,
        program: &'a Program,
        trace: &'a Trace,
        policy: ResizePolicy,
    ) -> Self {
        let adaptive = match policy {
            ResizePolicy::Adaptive(cfg) => Some(AdaptiveController::new(
                cfg,
                config.iq.entries,
                config.widths.rob_capacity,
            )),
            _ => None,
        };
        let mut stats = ActivityStats {
            iq_total_banks: config.iq.banks() as u64,
            iq_total_entries: config.iq.entries as u64,
            int_rf_total_banks: config.int_rf.banks() as u64,
            fp_rf_total_banks: config.fp_rf.banks() as u64,
            ..ActivityStats::default()
        };
        stats.cycles = 0;
        Simulator {
            caches: CacheHierarchy::new(&config),
            bpred: BranchPredictor::new(config.branch),
            iq: IssueQueue::new(config.iq),
            int_rf: RenamedRegFile::new(RegClass::Int, config.int_rf),
            fp_rf: RenamedRegFile::new(RegClass::Fp, config.fp_rf),
            adaptive,
            fetch_queue: VecDeque::new(),
            next_fetch: 0,
            fetch_stalled_until: 0,
            fetch_blocked_by: None,
            last_fetched_line: None,
            rob: VecDeque::new(),
            rob_limit: config.widths.rob_capacity,
            inflight: HashMap::new(),
            next_id: 0,
            completions: BTreeMap::new(),
            strip_count_this_cycle: 0,
            stats,
            config,
            program,
            trace,
            policy,
        }
    }

    fn rf_for(&mut self, class: RegClass) -> &mut RenamedRegFile {
        match class {
            RegClass::Int => &mut self.int_rf,
            RegClass::Fp => &mut self.fp_rf,
        }
    }

    /// Runs the simulation to completion and returns the activity counters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the pipeline stops making progress
    /// (a model bug, not an expected outcome).
    pub fn run(mut self) -> Result<SimResult, SimError> {
        let total = self.trace.committed.len();
        let mut cycle: u64 = 0;
        let mut committed_total: usize = 0;
        let mut last_progress_cycle: u64 = 0;
        let mut last_committed: usize = 0;
        // Generous bound: a completely serialised machine commits at least one
        // instruction every few hundred cycles.
        const PROGRESS_WINDOW: u64 = 100_000;

        while committed_total < total {
            // --- 1. writeback ------------------------------------------------
            if let Some(ids) = self.completions.remove(&cycle) {
                for id in ids {
                    self.writeback(id, cycle);
                }
            }

            // --- 2. commit ----------------------------------------------------
            let committed_now = self.commit(cycle);
            committed_total += committed_now;

            // --- 3. issue -----------------------------------------------------
            let observation = self.issue(cycle);

            // --- 4. dispatch --------------------------------------------------
            let _blocked_by_limit = self.dispatch(cycle);
            committed_total += self.strip_count_this_cycle;
            self.strip_count_this_cycle = 0;

            // --- 5. fetch -----------------------------------------------------
            self.fetch(cycle);

            // --- 6. per-cycle statistics and adaptive control ------------------
            self.collect_cycle_stats();
            if let Some(controller) = self.adaptive.as_mut() {
                if let Some(decision) = controller.on_cycle(cycle, observation) {
                    self.iq.set_hard_limit(Some(decision.iq_limit));
                    self.rob_limit = decision.rob_limit;
                }
            }

            // --- progress guard ------------------------------------------------
            if committed_total > last_committed {
                last_committed = committed_total;
                last_progress_cycle = cycle;
            } else if cycle - last_progress_cycle > PROGRESS_WINDOW {
                return Err(SimError::Deadlock {
                    cycle,
                    detail: format!(
                        "committed {committed_total}/{total}, rob={} iq={} fetchq={} next_fetch={}",
                        self.rob.len(),
                        self.iq.occupancy(),
                        self.fetch_queue.len(),
                        self.next_fetch
                    ),
                });
            }

            cycle += 1;
        }

        self.stats.cycles = cycle.max(1);
        let adaptive_resizes = self.adaptive.as_ref().map_or(0, |a| a.resizes());
        Ok(SimResult {
            stats: self.stats,
            adaptive_resizes,
        })
    }

    fn writeback(&mut self, id: u64, cycle: u64) {
        let (dest, mispredicted, trace_idx) = {
            let inst = self.inflight.get_mut(&id).expect("in-flight instruction");
            inst.state = InstState::Completed;
            (inst.dest, inst.mispredicted, inst.trace_idx)
        };
        if let Some(dest) = dest {
            // Write the register file and broadcast into the issue queue.
            self.rf_for(dest.class).write_value(dest);
            match dest.class {
                RegClass::Int => self.stats.int_rf_writes += 1,
                RegClass::Fp => self.stats.fp_rf_writes += 1,
            }
            let activity = self.iq.wakeup(dest);
            self.stats.wakeup_broadcasts += 1;
            self.stats.wakeup_comparisons_full += activity.full;
            self.stats.wakeup_comparisons_nonempty += activity.non_empty;
            self.stats.wakeup_comparisons_gated += activity.gated;
        }
        if mispredicted && self.fetch_blocked_by == Some(trace_idx) {
            self.fetch_blocked_by = None;
            self.fetch_stalled_until = self
                .fetch_stalled_until
                .max(cycle + 1 + u64::from(self.bpred.redirect_penalty()));
        }
    }

    fn commit(&mut self, _cycle: u64) -> usize {
        let width = self.config.widths.pipeline_width;
        let mut committed = 0;
        while committed < width {
            let Some(&head) = self.rob.front() else { break };
            let done = self
                .inflight
                .get(&head)
                .map(|i| i.state == InstState::Completed)
                .unwrap_or(false);
            if !done {
                break;
            }
            self.rob.pop_front();
            let inst = self.inflight.remove(&head).expect("committed instruction");
            if let Some(prev) = inst.prev_dest {
                self.rf_for(prev.class).release(prev);
            }
            self.stats.committed += 1;
            committed += 1;
        }
        committed
    }

    fn issue(&mut self, cycle: u64) -> AdaptiveObservation {
        let issue_width = self.config.widths.pipeline_width;
        let fu_counts = self.config.fu_counts;
        let mut per_class: HashMap<FuClass, usize> = HashMap::new();
        // Collect candidates oldest-first, remembering each entry's age rank
        // among the resident instructions (used by the adaptive heuristic to
        // measure the contribution of the youngest bank of its window).
        let candidates: Vec<(usize, usize, u64, FuClass)> = self
            .iq
            .iter_in_age_order()
            .enumerate()
            .filter(|(_, (_, e))| e.is_ready())
            .map(|(rank, (slot, e))| (rank, slot, e.id, e.fu))
            .collect();
        let limit = self.iq.hard_limit().unwrap_or_else(|| self.iq.capacity());
        let bank_size = self.config.iq.bank_size;
        let mut issued = 0usize;
        let mut observation = AdaptiveObservation::default();
        for (rank, slot, id, fu) in candidates {
            if issued >= issue_width {
                break;
            }
            let used = per_class.entry(fu).or_insert(0);
            if *used >= fu_counts.for_class(fu) {
                continue;
            }
            *used += 1;
            issued += 1;
            observation.issued += 1;
            if rank + bank_size >= limit {
                observation.issued_from_youngest_bank += 1;
            }

            self.iq.remove(slot);
            self.stats.iq_reads += 1;
            self.stats.issued += 1;

            // Register-file read ports.
            let srcs = self.inflight[&id].srcs;
            for src in srcs.iter().flatten() {
                self.rf_for(src.class).read_value(*src);
                match src.class {
                    RegClass::Int => self.stats.int_rf_reads += 1,
                    RegClass::Fp => self.stats.fp_rf_reads += 1,
                }
            }

            // Execution latency.
            let (opcode, mem_addr) = {
                let inst = self.inflight.get_mut(&id).expect("issuing instruction");
                inst.state = InstState::Executing;
                inst.iq_slot = None;
                (inst.opcode, inst.mem_addr)
            };
            let latency = if opcode.is_load() {
                let access = self
                    .caches
                    .access_data(mem_addr.unwrap_or(0x1000_0000));
                if access.l2_miss {
                    self.stats.l2_misses += 1;
                }
                u64::from(1 + access.latency)
            } else if opcode.is_store() {
                // Stores update the cache but retire from the pipeline's point
                // of view after address generation.
                let access = self
                    .caches
                    .access_data(mem_addr.unwrap_or(0x1000_0000));
                if access.l2_miss {
                    self.stats.l2_misses += 1;
                }
                1
            } else {
                u64::from(opcode.latency().max(1))
            };
            self.completions
                .entry(cycle + latency)
                .or_default()
                .push(id);
        }
        observation
    }

    /// Count of hint NOOPs stripped during the current dispatch step; they
    /// count towards total trace progress but not towards committed
    /// instructions.
    fn dispatch(&mut self, cycle: u64) -> bool {
        let width = self.config.widths.pipeline_width;
        let mut dispatched = 0usize;
        let mut blocked_by_limit = false;
        while dispatched < width {
            let Some(front) = self.fetch_queue.front().copied() else { break };
            if front.decode_ready > cycle {
                break;
            }
            let dyn_inst = &self.trace.committed[front.trace_idx];
            let static_inst = self.program.instruction(dyn_inst.loc);

            // Special NOOP: strip it at the final decode stage. It consumes
            // this dispatch slot but never enters the issue queue.
            if static_inst.is_hint_noop() {
                if self.policy.uses_hints() {
                    if let Some(value) = static_inst.iq_hint {
                        self.iq.apply_hint(value as usize);
                    }
                }
                self.fetch_queue.pop_front();
                self.stats.committed_hints += 1;
                self.strip_count_this_cycle += 1;
                dispatched += 1;
                continue;
            }

            // Instruction tag (Extension technique): processed at decode,
            // before the instruction dispatches, at no slot cost.
            if self.policy.uses_hints() {
                if let Some(value) = static_inst.iq_hint {
                    self.iq.apply_hint(value as usize);
                }
            }

            // Structural checks.
            if !self.iq.can_dispatch() {
                if self.iq.max_new_range().is_some() || self.iq.hard_limit().is_some() {
                    blocked_by_limit = true;
                    self.stats.dispatch_limit_stall_cycles += 1;
                }
                break;
            }
            if self.rob.len() >= self.rob_limit.min(self.config.widths.rob_capacity) {
                self.stats.rob_full_stall_cycles += 1;
                break;
            }
            if let Some(dest) = static_inst.dest {
                let has_free = match dest.class() {
                    RegClass::Int => self.int_rf.has_free(),
                    RegClass::Fp => self.fp_rf.has_free(),
                };
                if !has_free {
                    self.stats.rename_stall_cycles += 1;
                    break;
                }
            }

            // Rename.
            let mut srcs: [Option<PhysReg>; 2] = [None, None];
            for (i, src) in static_inst.srcs.iter().enumerate() {
                if let Some(arch) = src {
                    let phys = match arch.class() {
                        RegClass::Int => self.int_rf.rename_source(*arch),
                        RegClass::Fp => self.fp_rf.rename_source(*arch),
                    };
                    srcs[i] = Some(phys);
                }
            }
            let (dest, prev_dest) = match static_inst.dest {
                Some(arch) => {
                    let (new, old) = self
                        .rf_for(arch.class())
                        .allocate_dest(arch)
                        .expect("free register checked above");
                    (Some(new), Some(old))
                }
                None => (None, None),
            };

            // Build the issue-queue entry with current operand readiness.
            let mut operands: [Option<(PhysReg, bool)>; 2] = [None, None];
            for (i, src) in srcs.iter().enumerate() {
                if let Some(phys) = src {
                    let ready = match phys.class {
                        RegClass::Int => self.int_rf.is_ready(*phys),
                        RegClass::Fp => self.fp_rf.is_ready(*phys),
                    };
                    operands[i] = Some((*phys, ready));
                }
            }

            let id = self.next_id;
            self.next_id += 1;
            let entry = IqEntry {
                id,
                operands,
                fu: static_inst.fu_class(),
            };
            let slot = self.iq.dispatch(entry);
            self.stats.iq_writes += 1;
            self.stats.dispatched += 1;

            self.inflight.insert(
                id,
                InFlight {
                    trace_idx: front.trace_idx,
                    opcode: static_inst.opcode,
                    dest,
                    prev_dest,
                    srcs,
                    mem_addr: dyn_inst.mem_addr,
                    mispredicted: front.mispredicted,
                    state: InstState::InIssueQueue,
                    iq_slot: Some(slot),
                },
            );
            self.rob.push_back(id);
            self.fetch_queue.pop_front();
            dispatched += 1;
        }
        blocked_by_limit
    }

    fn fetch(&mut self, cycle: u64) {
        if self.fetch_blocked_by.is_some() || cycle < self.fetch_stalled_until {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        let width = self.config.widths.pipeline_width;
        let line_bytes = self.config.l1i.line_bytes as u64;
        let mut fetched = 0usize;
        while fetched < width
            && self.next_fetch < self.trace.committed.len()
            && self.fetch_queue.len() < self.config.fetch_queue_entries
        {
            let idx = self.next_fetch;
            let dyn_inst = &self.trace.committed[idx];
            let static_inst = self.program.instruction(dyn_inst.loc);
            let addr = dyn_inst.addr;

            // I-cache: one access per new cache line touched.
            let line = addr / line_bytes;
            if self.last_fetched_line != Some(line) {
                let access = self.caches.access_instruction(addr);
                self.last_fetched_line = Some(line);
                if access.l1_miss {
                    self.stats.icache_misses += 1;
                    if access.l2_miss {
                        self.stats.l2_misses += 1;
                    }
                    // Refill stall: resume fetching this instruction after the
                    // miss is served.
                    self.fetch_stalled_until = cycle + u64::from(access.latency);
                    break;
                }
            }

            let mut mispredicted = false;
            let mut ends_fetch_group = false;
            if static_inst.opcode.is_cond_branch() {
                self.stats.branches += 1;
                let actual_taken = dyn_inst.taken.unwrap_or(false);
                let prediction = self.bpred.predict_direction(addr);
                self.bpred.update_direction(addr, prediction, actual_taken);
                if prediction.taken != actual_taken {
                    mispredicted = true;
                    self.stats.mispredicted_branches += 1;
                }
                if actual_taken {
                    ends_fetch_group = true;
                    // Target prediction through the BTB.
                    let target = self
                        .trace
                        .committed
                        .get(idx + 1)
                        .map(|d| d.addr)
                        .unwrap_or(addr + 4);
                    if self.bpred.predict_target(addr) != Some(target) {
                        self.stats.btb_misses += 1;
                        self.fetch_stalled_until = self.fetch_stalled_until.max(cycle + 2);
                    }
                    self.bpred.update_target(addr, target);
                }
            } else if static_inst.opcode.is_control() {
                // Unconditional transfers: jumps, calls, returns.
                ends_fetch_group = true;
                let target = self
                    .trace
                    .committed
                    .get(idx + 1)
                    .map(|d| d.addr)
                    .unwrap_or(addr + 4);
                if self.bpred.predict_target(addr) != Some(target) {
                    self.stats.btb_misses += 1;
                    self.fetch_stalled_until = self.fetch_stalled_until.max(cycle + 2);
                }
                self.bpred.update_target(addr, target);
            }

            self.fetch_queue.push_back(FetchedInst {
                trace_idx: idx,
                decode_ready: cycle + u64::from(self.config.decode_stages),
                mispredicted,
            });
            self.next_fetch += 1;
            fetched += 1;

            if mispredicted {
                // Fetch cannot proceed past a mispredicted branch until it
                // resolves at writeback.
                self.fetch_blocked_by = Some(idx);
                break;
            }
            if ends_fetch_group {
                break;
            }
        }
    }

    fn collect_cycle_stats(&mut self) {
        self.stats.iq_occupancy_sum += self.iq.occupancy() as u64;
        // Empty banks are switched off. Under the adaptive (Abella-style)
        // policy the controller disables whole banks above its limit, so the
        // powered banks are those of the enabled window even though this
        // model keeps a single circular buffer underneath.
        let bank_size = self.config.iq.bank_size.max(1);
        let banks_on = match self.iq.hard_limit() {
            Some(limit) => {
                let enabled = (limit + bank_size - 1) / bank_size;
                enabled.min(self.config.iq.banks())
            }
            None => self.iq.banks_on(),
        };
        self.stats.iq_banks_on_sum += banks_on as u64;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.stats.int_rf_occupancy_sum += self.int_rf.occupancy() as u64;
        self.stats.int_rf_banks_on_sum += self.int_rf.banks_on() as u64;
        self.stats.fp_rf_occupancy_sum += self.fp_rf.occupancy() as u64;
        self.stats.fp_rf_banks_on_sum += self.fp_rf.banks_on() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resize::AdaptiveConfig;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Executor;

    fn loop_program(trips: i64, ilp: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 1000);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                for k in 0..ilp {
                    bb.addi(int_reg(3 + (k % 6) as u8), int_reg(2), k as i64);
                }
                bb.load(int_reg(10), int_reg(2), 0);
                bb.addi(int_reg(11), int_reg(10), 1);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), trips, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    fn run(program: &Program, policy: ResizePolicy) -> SimResult {
        let trace = Executor::new(program).run(200_000).unwrap();
        Simulator::new(SimConfig::hpca2005(), program, &trace, policy)
            .run()
            .unwrap()
    }

    #[test]
    fn baseline_run_commits_everything() {
        let program = loop_program(200, 4);
        let trace = Executor::new(&program).run(200_000).unwrap();
        let result = Simulator::new(
            SimConfig::hpca2005(),
            &program,
            &trace,
            ResizePolicy::Fixed,
        )
        .run()
        .unwrap();
        assert_eq!(result.stats.committed, trace.len() as u64);
        assert!(result.stats.cycles > 0);
        let ipc = result.stats.ipc();
        assert!(ipc > 0.5 && ipc <= 8.0, "IPC {ipc} out of range");
    }

    #[test]
    fn wakeup_accounting_orders_schemes_correctly() {
        let program = loop_program(300, 6);
        let result = run(&program, ResizePolicy::Fixed);
        let s = &result.stats;
        assert!(s.wakeup_comparisons_full >= s.wakeup_comparisons_nonempty);
        assert!(s.wakeup_comparisons_nonempty >= s.wakeup_comparisons_gated);
        assert!(s.wakeup_broadcasts > 0);
    }

    #[test]
    fn adaptive_policy_resizes_and_still_commits() {
        let program = loop_program(4000, 2);
        let result = run(
            &program,
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        );
        assert!(result.stats.committed > 0);
        assert!(result.adaptive_resizes > 0, "controller should have acted");
        // Low-ILP loop → the adaptive queue shrinks → fewer banks on average
        // than the 10-bank baseline.
        assert!(result.stats.avg_iq_banks_on() < 10.0);
    }

    #[test]
    fn branch_predictor_learns_the_loop() {
        let program = loop_program(400, 1);
        let result = run(&program, ResizePolicy::Fixed);
        assert!(result.stats.branches >= 400);
        assert!(result.stats.mispredict_rate() < 0.2);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let program = loop_program(150, 3);
        let result = run(&program, ResizePolicy::Fixed);
        let s = &result.stats;
        assert_eq!(s.dispatched, s.iq_writes);
        assert_eq!(s.issued, s.iq_reads);
        assert!(s.issued >= s.committed);
        assert!(s.dispatched >= s.issued);
        assert!(s.iq_occupancy_sum > 0);
        assert!(s.avg_iq_occupancy() <= s.iq_total_entries as f64);
        assert!(s.avg_iq_banks_on() <= s.iq_total_banks as f64);
    }
}
