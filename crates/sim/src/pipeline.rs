//! The cycle-level out-of-order pipeline.
//!
//! The simulator is trace-driven: the functional executor
//! ([`sdiq_isa::Executor`]) provides the committed dynamic instruction
//! stream, and this model replays it through an 8-wide out-of-order pipeline
//! with the Table 1 configuration, adding timing effects:
//!
//! * fetch through the I-cache with hybrid branch prediction and a BTB;
//!   fetch stalls at a mispredicted branch until it resolves (plus a
//!   redirect penalty), which is the standard trace-driven approximation of
//!   wrong-path execution,
//! * a multi-cycle decode pipeline feeding the fetch queue (§3.2),
//! * dispatch with register renaming onto the banked physical register
//!   files, special-NOOP stripping at the final decode stage (hints consume
//!   a dispatch slot, §5.2.1), instruction-tag processing, and the
//!   `new_head` / `max_new_range` dispatch limit,
//! * wakeup/select issue from the banked non-collapsible issue queue with
//!   per-class functional-unit arbitration,
//! * execution latencies per Table 1 and a two-level data-cache hierarchy,
//! * in-order commit from a 128-entry ROB.
//!
//! Every structure feeds the activity counters in [`crate::stats`], which the
//! power model consumes.
//!
//! # Hot-path data structures: O(actual work) per cycle
//!
//! The cycle loop performs no per-cycle heap allocation and never scans a
//! structure proportionally to its capacity:
//!
//! * **Ready list** — issue selection walks a persistent, age-ordered list
//!   of *ready* entries, maintained at dispatch (entries ready on arrival)
//!   and at wakeup (the issue queue's consumer index reports entries that
//!   just became fully ready), instead of re-scanning and re-allocating a
//!   candidate vector from the whole queue each cycle. Per-class
//!   functional-unit arbitration uses a fixed [`FuClass::COUNT`]-sized
//!   array rather than a hash map.
//! * **In-flight ring** — instructions get sequential ids and commit in
//!   order, so the in-flight table is a `VecDeque` ring indexed by
//!   `id - inflight_base` (O(1), no hashing) that doubles as the ROB.
//! * **Event calendar** — completion events live in a circular calendar
//!   (wheel) of `Vec` buckets sized to the maximum execution latency;
//!   scheduling and per-cycle harvesting are O(events), with bucket
//!   capacity recycled cycle over cycle.

use crate::branch::BranchPredictor;
use crate::cache::CacheHierarchy;
use crate::config::SimConfig;
use crate::issue_queue::{IqEntry, IssueQueue};
use crate::regfile::{PhysReg, RenamedRegFile};
use crate::resize::{AdaptiveController, AdaptiveObservation, ResizePolicy};
use crate::stats::ActivityStats;
use sdiq_isa::{FuClass, Opcode, Program, RegClass, Trace};
use std::collections::VecDeque;
use std::fmt;

/// Errors a simulation can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline stopped making progress (indicates a model bug; the
    /// message carries diagnostic state).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Human-readable diagnostic.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "pipeline deadlock at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Activity counters for the run.
    pub stats: ActivityStats,
    /// Resize decisions taken by the adaptive controller (0 unless the
    /// adaptive policy was used).
    pub adaptive_resizes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    InIssueQueue,
    Executing,
    Completed,
}

#[derive(Debug, Clone)]
struct InFlight {
    trace_idx: usize,
    opcode: Opcode,
    dest: Option<PhysReg>,
    /// Previous mapping of the destination architectural register, released
    /// at commit.
    prev_dest: Option<PhysReg>,
    srcs: [Option<PhysReg>; 2],
    mem_addr: Option<u64>,
    mispredicted: bool,
    state: InstState,
}

#[derive(Debug, Clone, Copy)]
struct FetchedInst {
    trace_idx: usize,
    decode_ready: u64,
    mispredicted: bool,
}

/// A resident, fully-ready issue-queue entry awaiting selection.
#[derive(Debug, Clone, Copy)]
struct ReadyCandidate {
    id: u64,
    slot: u32,
    fu: FuClass,
}

/// Circular event calendar for completion events: bucket `cycle % len`
/// holds the instruction ids completing at `cycle`. O(1) schedule, O(due
/// events) harvest, bucket allocations recycled. Shared with the compiled
/// backend ([`crate::plan`]), which runs the identical calendar over its
/// pre-lowered instruction stream.
#[derive(Debug)]
pub(crate) struct EventWheel {
    buckets: Vec<Vec<u64>>,
    /// `buckets.len() - 1`; the length is a power of two, so `due & mask`
    /// equals `due % len` without the hardware division.
    mask: u64,
    /// Spare bucket storage swapped in by [`EventWheel::take_due`] and
    /// returned (cleared, capacity retained) by [`EventWheel::recycle`].
    spare: Vec<u64>,
}

impl EventWheel {
    /// A wheel able to schedule up to `max_latency` cycles ahead.
    pub(crate) fn new(max_latency: u64) -> Self {
        let len = (max_latency + 1).next_power_of_two() as usize;
        EventWheel {
            buckets: (0..len).map(|_| Vec::new()).collect(),
            mask: len as u64 - 1,
            spare: Vec::new(),
        }
    }

    /// Schedules `id` to complete at `due` (seen from `now`).
    pub(crate) fn schedule(&mut self, now: u64, due: u64, id: u64) {
        debug_assert!(due > now, "completion must be in the future");
        assert!(
            (due - now) < self.buckets.len() as u64,
            "latency {} exceeds the event calendar horizon {}",
            due - now,
            self.buckets.len()
        );
        let index = (due & self.mask) as usize;
        self.buckets[index].push(id);
    }

    /// Takes the ids due at `cycle` (possibly empty). Return the `Vec` via
    /// [`EventWheel::recycle`] to keep the steady state allocation-free.
    pub(crate) fn take_due(&mut self, cycle: u64) -> Vec<u64> {
        let index = (cycle & self.mask) as usize;
        std::mem::replace(&mut self.buckets[index], std::mem::take(&mut self.spare))
    }

    /// Returns a bucket taken with [`EventWheel::take_due`].
    pub(crate) fn recycle(&mut self, mut bucket: Vec<u64>) {
        bucket.clear();
        self.spare = bucket;
    }
}

/// The longest possible completion latency under `config`: a load missing
/// all the way to memory, or the slowest functional unit (fp divide); +4
/// for the issue-cycle offsets. One source of truth for both backends'
/// event calendars.
pub(crate) fn max_completion_latency(config: &SimConfig) -> u64 {
    u64::from(1 + config.l1d.hit_latency + config.l2.hit_latency + config.memory_latency).max(16)
        + 4
}

/// The trace-driven out-of-order pipeline simulator.
///
/// Create one per run with [`Simulator::new`] and call [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator<'a> {
    config: SimConfig,
    trace: &'a Trace,
    /// Static instruction of each trace entry, resolved once at
    /// construction: fetch and dispatch both consult the static side of
    /// every dynamic instruction, and `Program::instruction` is three
    /// indirections deep.
    decoded: Vec<&'a sdiq_isa::Instruction>,
    policy: ResizePolicy,

    caches: CacheHierarchy,
    bpred: BranchPredictor,
    iq: IssueQueue,
    int_rf: RenamedRegFile,
    fp_rf: RenamedRegFile,
    adaptive: Option<AdaptiveController>,

    fetch_queue: VecDeque<FetchedInst>,
    next_fetch: usize,
    fetch_stalled_until: u64,
    /// Trace index of the unresolved mispredicted branch blocking fetch.
    fetch_blocked_by: Option<usize>,
    last_fetched_line: Option<u64>,

    /// In-flight ring: instruction `id` lives at `inflight[id -
    /// inflight_base]`. Dispatch pushes at the back, in-order commit pops at
    /// the front, so the ring *is* the ROB (`inflight.len()` = ROB
    /// occupancy).
    inflight: VecDeque<InFlight>,
    inflight_base: u64,
    rob_limit: usize,
    next_id: u64,
    completions: EventWheel,
    /// Persistent age-ordered (= id-ordered) list of ready issue candidates.
    ready: Vec<ReadyCandidate>,
    /// Hint NOOPs stripped during the current dispatch step; they count
    /// towards trace progress but not towards committed instructions.
    strip_count_this_cycle: usize,

    stats: ActivityStats,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `program` / `trace` under `config` and
    /// `policy`. The trace must have been produced by executing exactly this
    /// program (instruction locations are looked up in it).
    pub fn new(
        config: SimConfig,
        program: &'a Program,
        trace: &'a Trace,
        policy: ResizePolicy,
    ) -> Self {
        let adaptive = match policy {
            ResizePolicy::Adaptive(cfg) => Some(AdaptiveController::new(
                cfg,
                config.iq.entries,
                config.widths.rob_capacity,
            )),
            _ => None,
        };
        let mut stats = ActivityStats {
            iq_total_banks: config.iq.banks() as u64,
            iq_total_entries: config.iq.entries as u64,
            int_rf_total_banks: config.int_rf.banks() as u64,
            fp_rf_total_banks: config.fp_rf.banks() as u64,
            ..ActivityStats::default()
        };
        stats.cycles = 0;
        let max_latency = max_completion_latency(&config);
        // Resolve every dynamic instruction's static side once. Consecutive
        // trace entries overwhelmingly share a basic block, so the block's
        // instruction slice is looked up only on block changes.
        let mut decoded: Vec<&'a sdiq_isa::Instruction> = Vec::with_capacity(trace.committed.len());
        let mut cached_block: Option<(
            sdiq_isa::ProcId,
            sdiq_isa::BlockId,
            &'a [sdiq_isa::Instruction],
        )> = None;
        for dyn_inst in &trace.committed {
            let loc = dyn_inst.loc;
            let instructions = match cached_block {
                Some((proc, block, instructions)) if proc == loc.proc && block == loc.block => {
                    instructions
                }
                _ => {
                    let instructions = program
                        .proc(loc.proc)
                        .block(loc.block)
                        .instructions
                        .as_slice();
                    cached_block = Some((loc.proc, loc.block, instructions));
                    instructions
                }
            };
            decoded.push(&instructions[loc.index]);
        }
        Simulator {
            caches: CacheHierarchy::new(&config),
            bpred: BranchPredictor::new(config.branch),
            iq: IssueQueue::new(config.iq),
            int_rf: RenamedRegFile::new(RegClass::Int, config.int_rf),
            fp_rf: RenamedRegFile::new(RegClass::Fp, config.fp_rf),
            adaptive,
            fetch_queue: VecDeque::new(),
            next_fetch: 0,
            fetch_stalled_until: 0,
            fetch_blocked_by: None,
            last_fetched_line: None,
            inflight: VecDeque::new(),
            inflight_base: 0,
            rob_limit: config.widths.rob_capacity,
            next_id: 0,
            completions: EventWheel::new(max_latency),
            ready: Vec::new(),
            strip_count_this_cycle: 0,
            stats,
            config,
            trace,
            decoded,
            policy,
        }
    }

    fn rf_for(&mut self, class: RegClass) -> &mut RenamedRegFile {
        match class {
            RegClass::Int => &mut self.int_rf,
            RegClass::Fp => &mut self.fp_rf,
        }
    }

    /// Ring index of in-flight instruction `id` (ids are sequential and
    /// commit in order, so `id - inflight_base` is the ring offset).
    fn inflight_index(&self, id: u64) -> usize {
        (id - self.inflight_base) as usize
    }

    fn inflight_mut(&mut self, id: u64) -> &mut InFlight {
        let index = self.inflight_index(id);
        &mut self.inflight[index]
    }

    /// Runs the simulation to completion and returns the activity counters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the pipeline stops making progress
    /// (a model bug, not an expected outcome).
    pub fn run(mut self) -> Result<SimResult, SimError> {
        let total = self.trace.committed.len();
        let mut cycle: u64 = 0;
        let mut committed_total: usize = 0;
        let mut last_progress_cycle: u64 = 0;
        let mut last_committed: usize = 0;
        // Generous bound: a completely serialised machine commits at least one
        // instruction every few hundred cycles.
        const PROGRESS_WINDOW: u64 = 100_000;

        while committed_total < total {
            // --- 1. writeback ------------------------------------------------
            let due = self.completions.take_due(cycle);
            for &id in &due {
                self.writeback(id, cycle);
            }
            self.completions.recycle(due);

            // --- 2. commit ----------------------------------------------------
            let committed_now = self.commit(cycle);
            committed_total += committed_now;

            // --- 3. issue -----------------------------------------------------
            let observation = self.issue(cycle);

            // --- 4. dispatch --------------------------------------------------
            let _blocked_by_limit = self.dispatch(cycle);
            committed_total += self.strip_count_this_cycle;
            self.strip_count_this_cycle = 0;

            // --- 5. fetch -----------------------------------------------------
            self.fetch(cycle);

            // --- 6. per-cycle statistics and adaptive control ------------------
            self.collect_cycle_stats();
            if let Some(controller) = self.adaptive.as_mut() {
                if let Some(decision) = controller.on_cycle(cycle, observation) {
                    self.iq.set_hard_limit(Some(decision.iq_limit));
                    self.rob_limit = decision.rob_limit;
                }
            }

            // --- progress guard ------------------------------------------------
            if committed_total > last_committed {
                last_committed = committed_total;
                last_progress_cycle = cycle;
            } else if cycle - last_progress_cycle > PROGRESS_WINDOW {
                return Err(SimError::Deadlock {
                    cycle,
                    detail: format!(
                        "committed {committed_total}/{total}, rob={} iq={} fetchq={} next_fetch={}",
                        self.inflight.len(),
                        self.iq.occupancy(),
                        self.fetch_queue.len(),
                        self.next_fetch
                    ),
                });
            }

            cycle += 1;
        }

        self.stats.cycles = cycle.max(1);
        // The cache hierarchy owns the authoritative D-cache hit/miss
        // counters (issue charges latency per access but only tallies L2
        // misses inline); publish them into the activity stats so the
        // memory-boundedness of a run is visible to the experiment layer.
        let (dcache_accesses, dcache_misses) = self.caches.dcache_stats();
        self.stats.dcache_accesses = dcache_accesses;
        self.stats.dcache_misses = dcache_misses;
        let adaptive_resizes = self.adaptive.as_ref().map_or(0, |a| a.resizes());
        Ok(SimResult {
            stats: self.stats,
            adaptive_resizes,
        })
    }

    fn writeback(&mut self, id: u64, cycle: u64) {
        let inst = self.inflight_mut(id);
        inst.state = InstState::Completed;
        let (dest, mispredicted, trace_idx) = (inst.dest, inst.mispredicted, inst.trace_idx);
        if let Some(dest) = dest {
            // Write the register file and broadcast into the issue queue.
            self.rf_for(dest.class).write_value(dest);
            match dest.class {
                RegClass::Int => self.stats.int_rf_writes += 1,
                RegClass::Fp => self.stats.fp_rf_writes += 1,
            }
            let activity = self.iq.wakeup(dest);
            self.stats.wakeup_broadcasts += 1;
            self.stats.wakeup_comparisons_full += activity.full;
            self.stats.wakeup_comparisons_nonempty += activity.non_empty;
            self.stats.wakeup_comparisons_gated += activity.gated;
            // Entries the broadcast completed join the ready list at their
            // age-order (= id-order) position.
            for event in self.iq.newly_ready() {
                let candidate = ReadyCandidate {
                    id: event.id,
                    slot: event.slot as u32,
                    fu: event.fu,
                };
                let position = self.ready.partition_point(|c| c.id < candidate.id);
                self.ready.insert(position, candidate);
            }
        }
        if mispredicted && self.fetch_blocked_by == Some(trace_idx) {
            self.fetch_blocked_by = None;
            self.fetch_stalled_until = self
                .fetch_stalled_until
                .max(cycle + 1 + u64::from(self.bpred.redirect_penalty()));
        }
    }

    fn commit(&mut self, _cycle: u64) -> usize {
        let width = self.config.widths.pipeline_width;
        let mut committed = 0;
        while committed < width {
            let done = self
                .inflight
                .front()
                .map(|inst| inst.state == InstState::Completed)
                .unwrap_or(false);
            if !done {
                break;
            }
            let inst = self.inflight.pop_front().expect("committed instruction");
            self.inflight_base += 1;
            if let Some(prev) = inst.prev_dest {
                self.rf_for(prev.class).release(prev);
            }
            self.stats.committed += 1;
            if self.decoded[inst.trace_idx].low_energy {
                self.stats.committed_low_energy += 1;
            }
            committed += 1;
        }
        committed
    }

    fn issue(&mut self, cycle: u64) -> AdaptiveObservation {
        let issue_width = self.config.widths.pipeline_width;
        let fu_counts = self.config.fu_counts;
        let limit = self.iq.hard_limit().unwrap_or_else(|| self.iq.capacity());
        let bank_size = self.config.iq.bank_size;
        // The youngest-bank signal is only consumed by the adaptive
        // controller, and no resident can rank inside the youngest window
        // when the occupancy snapshot doesn't reach it (max rank =
        // occupancy - 1 < limit - bank_size): skip the rank queries
        // entirely in both cases.
        let track_youngest = self.adaptive.is_some() && self.iq.occupancy() + bank_size > limit;
        let mut fu_used = [0usize; FuClass::COUNT];
        let mut issued = 0usize;
        let mut observation = AdaptiveObservation::default();

        // Walk the persistent ready list oldest-first, selecting within the
        // issue width and per-class functional-unit counts; non-selected
        // candidates are compacted back in place (no allocation). The list
        // is taken out of `self` for the duration to keep the borrow
        // checker satisfied; nothing pushes to it during issue.
        let mut candidates = std::mem::take(&mut self.ready);
        let mut kept = 0usize;
        for index in 0..candidates.len() {
            let candidate = candidates[index];
            if issued >= issue_width {
                candidates[kept] = candidate;
                kept += 1;
                continue;
            }
            let class = candidate.fu.index();
            if fu_used[class] >= fu_counts.for_class(candidate.fu) {
                candidates[kept] = candidate;
                kept += 1;
                continue;
            }
            fu_used[class] += 1;
            observation.issued += 1;
            // Age rank among the residents at the *start* of this issue
            // step: every candidate issued earlier this cycle was older, so
            // add them back to the post-removal rank. Only the adaptive
            // controller consumes the youngest-bank signal, so the rank
            // query is skipped entirely for the other policies.
            if track_youngest {
                let rank = self.iq.age_rank(candidate.slot as usize) + issued;
                if rank + bank_size >= limit {
                    observation.issued_from_youngest_bank += 1;
                }
            }
            issued += 1;

            let id = candidate.id;
            self.iq.remove(candidate.slot as usize);
            self.stats.iq_reads += 1;
            self.stats.issued += 1;

            // Register-file read ports.
            let srcs = self.inflight[self.inflight_index(id)].srcs;
            for src in srcs.iter().flatten() {
                self.rf_for(src.class).read_value(*src);
                match src.class {
                    RegClass::Int => self.stats.int_rf_reads += 1,
                    RegClass::Fp => self.stats.fp_rf_reads += 1,
                }
            }

            // Execution latency.
            let inst = self.inflight_mut(id);
            inst.state = InstState::Executing;
            let (opcode, mem_addr) = (inst.opcode, inst.mem_addr);
            let latency = if opcode.is_load() {
                let access = self.caches.access_data(mem_addr.unwrap_or(0x1000_0000));
                if access.l2_miss {
                    self.stats.l2_misses += 1;
                }
                u64::from(1 + access.latency)
            } else if opcode.is_store() {
                // Stores update the cache but retire from the pipeline's point
                // of view after address generation.
                let access = self.caches.access_data(mem_addr.unwrap_or(0x1000_0000));
                if access.l2_miss {
                    self.stats.l2_misses += 1;
                }
                1
            } else {
                u64::from(opcode.latency().max(1))
            };
            self.completions.schedule(cycle, cycle + latency, id);
        }
        candidates.truncate(kept);
        self.ready = candidates;
        observation
    }

    /// Count of hint NOOPs stripped during the current dispatch step; they
    /// count towards total trace progress but not towards committed
    /// instructions.
    fn dispatch(&mut self, cycle: u64) -> bool {
        let width = self.config.widths.pipeline_width;
        let mut dispatched = 0usize;
        let mut blocked_by_limit = false;
        while dispatched < width {
            let Some(front) = self.fetch_queue.front().copied() else {
                break;
            };
            if front.decode_ready > cycle {
                break;
            }
            let dyn_inst = &self.trace.committed[front.trace_idx];
            let static_inst = self.decoded[front.trace_idx];

            // Special NOOP: strip it at the final decode stage. It consumes
            // this dispatch slot but never enters the issue queue.
            if static_inst.is_hint_noop() {
                if self.policy.uses_hints() {
                    if let Some(value) = static_inst.iq_hint {
                        self.iq.apply_hint(value as usize);
                    }
                }
                self.fetch_queue.pop_front();
                self.stats.committed_hints += 1;
                self.strip_count_this_cycle += 1;
                dispatched += 1;
                continue;
            }

            // Instruction tag (Extension technique): processed at decode,
            // before the instruction dispatches, at no slot cost.
            if self.policy.uses_hints() {
                if let Some(value) = static_inst.iq_hint {
                    self.iq.apply_hint(value as usize);
                }
            }

            // Structural checks.
            if !self.iq.can_dispatch() {
                if self.iq.max_new_range().is_some() || self.iq.hard_limit().is_some() {
                    blocked_by_limit = true;
                    self.stats.dispatch_limit_stall_cycles += 1;
                }
                break;
            }
            if self.inflight.len() >= self.rob_limit.min(self.config.widths.rob_capacity) {
                self.stats.rob_full_stall_cycles += 1;
                break;
            }
            if let Some(dest) = static_inst.dest {
                let has_free = match dest.class() {
                    RegClass::Int => self.int_rf.has_free(),
                    RegClass::Fp => self.fp_rf.has_free(),
                };
                if !has_free {
                    self.stats.rename_stall_cycles += 1;
                    break;
                }
            }

            // Rename.
            let mut srcs: [Option<PhysReg>; 2] = [None, None];
            for (i, src) in static_inst.srcs.iter().enumerate() {
                if let Some(arch) = src {
                    let phys = match arch.class() {
                        RegClass::Int => self.int_rf.rename_source(*arch),
                        RegClass::Fp => self.fp_rf.rename_source(*arch),
                    };
                    srcs[i] = Some(phys);
                }
            }
            let (dest, prev_dest) = match static_inst.dest {
                Some(arch) => {
                    let (new, old) = self
                        .rf_for(arch.class())
                        .allocate_dest(arch)
                        .expect("free register checked above");
                    (Some(new), Some(old))
                }
                None => (None, None),
            };

            // Build the issue-queue entry with current operand readiness.
            let mut operands: [Option<(PhysReg, bool)>; 2] = [None, None];
            for (i, src) in srcs.iter().enumerate() {
                if let Some(phys) = src {
                    let ready = match phys.class {
                        RegClass::Int => self.int_rf.is_ready(*phys),
                        RegClass::Fp => self.fp_rf.is_ready(*phys),
                    };
                    operands[i] = Some((*phys, ready));
                }
            }

            let id = self.next_id;
            self.next_id += 1;
            let entry = IqEntry {
                id,
                operands,
                fu: static_inst.fu_class(),
            };
            let slot = self.iq.dispatch(entry);
            self.stats.iq_writes += 1;
            self.stats.dispatched += 1;
            // Ready on arrival → joins the ready list immediately. Ids are
            // monotonic, so appending keeps the list age-ordered.
            if entry.is_ready() {
                self.ready.push(ReadyCandidate {
                    id,
                    slot: slot as u32,
                    fu: entry.fu,
                });
            }

            debug_assert_eq!(id, self.inflight_base + self.inflight.len() as u64);
            self.inflight.push_back(InFlight {
                trace_idx: front.trace_idx,
                opcode: static_inst.opcode,
                dest,
                prev_dest,
                srcs,
                mem_addr: dyn_inst.mem_addr,
                mispredicted: front.mispredicted,
                state: InstState::InIssueQueue,
            });
            self.fetch_queue.pop_front();
            dispatched += 1;
        }
        blocked_by_limit
    }

    fn fetch(&mut self, cycle: u64) {
        if self.fetch_blocked_by.is_some() || cycle < self.fetch_stalled_until {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        let width = self.config.widths.pipeline_width;
        let line_bytes = self.config.l1i.line_bytes as u64;
        let mut fetched = 0usize;
        while fetched < width
            && self.next_fetch < self.trace.committed.len()
            && self.fetch_queue.len() < self.config.fetch_queue_entries
        {
            let idx = self.next_fetch;
            let dyn_inst = &self.trace.committed[idx];
            let static_inst = self.decoded[idx];
            let addr = dyn_inst.addr;

            // I-cache: one access per new cache line touched.
            let line = addr / line_bytes;
            if self.last_fetched_line != Some(line) {
                let access = self.caches.access_instruction(addr);
                self.last_fetched_line = Some(line);
                if access.l1_miss {
                    self.stats.icache_misses += 1;
                    if access.l2_miss {
                        self.stats.l2_misses += 1;
                    }
                    // Refill stall: resume fetching this instruction after the
                    // miss is served.
                    self.fetch_stalled_until = cycle + u64::from(access.latency);
                    break;
                }
            }

            let mut mispredicted = false;
            let mut ends_fetch_group = false;
            if static_inst.opcode.is_cond_branch() {
                self.stats.branches += 1;
                let actual_taken = dyn_inst.taken.unwrap_or(false);
                let prediction = self.bpred.predict_direction(addr);
                self.bpred.update_direction(addr, prediction, actual_taken);
                if prediction.taken != actual_taken {
                    mispredicted = true;
                    self.stats.mispredicted_branches += 1;
                }
                if actual_taken {
                    ends_fetch_group = true;
                    // Target prediction through the BTB.
                    let target = self
                        .trace
                        .committed
                        .get(idx + 1)
                        .map(|d| d.addr)
                        .unwrap_or(addr + 4);
                    if self.bpred.predict_target(addr) != Some(target) {
                        self.stats.btb_misses += 1;
                        self.fetch_stalled_until = self.fetch_stalled_until.max(cycle + 2);
                    }
                    self.bpred.update_target(addr, target);
                }
            } else if static_inst.opcode.is_control() {
                // Unconditional transfers: jumps, calls, returns.
                ends_fetch_group = true;
                let target = self
                    .trace
                    .committed
                    .get(idx + 1)
                    .map(|d| d.addr)
                    .unwrap_or(addr + 4);
                if self.bpred.predict_target(addr) != Some(target) {
                    self.stats.btb_misses += 1;
                    self.fetch_stalled_until = self.fetch_stalled_until.max(cycle + 2);
                }
                self.bpred.update_target(addr, target);
            }

            self.fetch_queue.push_back(FetchedInst {
                trace_idx: idx,
                decode_ready: cycle + u64::from(self.config.decode_stages),
                mispredicted,
            });
            self.next_fetch += 1;
            fetched += 1;

            if mispredicted {
                // Fetch cannot proceed past a mispredicted branch until it
                // resolves at writeback.
                self.fetch_blocked_by = Some(idx);
                break;
            }
            if ends_fetch_group {
                break;
            }
        }
    }

    fn collect_cycle_stats(&mut self) {
        self.stats.iq_occupancy_sum += self.iq.occupancy() as u64;
        // Empty banks are switched off. Under the adaptive (Abella-style)
        // policy the controller disables whole banks above its limit, so the
        // powered banks are those of the enabled window even though this
        // model keeps a single circular buffer underneath.
        let bank_size = self.config.iq.bank_size.max(1);
        let banks_on = match self.iq.hard_limit() {
            Some(limit) => limit.div_ceil(bank_size).min(self.config.iq.banks()),
            None => self.iq.banks_on(),
        };
        self.stats.iq_banks_on_sum += banks_on as u64;
        self.stats.rob_occupancy_sum += self.inflight.len() as u64;
        self.stats.int_rf_occupancy_sum += self.int_rf.occupancy() as u64;
        self.stats.int_rf_banks_on_sum += self.int_rf.banks_on() as u64;
        self.stats.fp_rf_occupancy_sum += self.fp_rf.occupancy() as u64;
        self.stats.fp_rf_banks_on_sum += self.fp_rf.banks_on() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resize::AdaptiveConfig;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Executor;

    fn loop_program(trips: i64, ilp: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 1000);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                for k in 0..ilp {
                    bb.addi(int_reg(3 + (k % 6) as u8), int_reg(2), k as i64);
                }
                bb.load(int_reg(10), int_reg(2), 0);
                bb.addi(int_reg(11), int_reg(10), 1);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), trips, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    fn run(program: &Program, policy: ResizePolicy) -> SimResult {
        let trace = Executor::new(program).run(200_000).unwrap();
        Simulator::new(SimConfig::hpca2005(), program, &trace, policy)
            .run()
            .unwrap()
    }

    #[test]
    fn baseline_run_commits_everything() {
        let program = loop_program(200, 4);
        let trace = Executor::new(&program).run(200_000).unwrap();
        let result = Simulator::new(SimConfig::hpca2005(), &program, &trace, ResizePolicy::Fixed)
            .run()
            .unwrap();
        assert_eq!(result.stats.committed, trace.len() as u64);
        assert!(result.stats.cycles > 0);
        let ipc = result.stats.ipc();
        assert!(ipc > 0.5 && ipc <= 8.0, "IPC {ipc} out of range");
    }

    #[test]
    fn wakeup_accounting_orders_schemes_correctly() {
        let program = loop_program(300, 6);
        let result = run(&program, ResizePolicy::Fixed);
        let s = &result.stats;
        assert!(s.wakeup_comparisons_full >= s.wakeup_comparisons_nonempty);
        assert!(s.wakeup_comparisons_nonempty >= s.wakeup_comparisons_gated);
        assert!(s.wakeup_broadcasts > 0);
    }

    #[test]
    fn adaptive_policy_resizes_and_still_commits() {
        let program = loop_program(4000, 2);
        let result = run(&program, ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()));
        assert!(result.stats.committed > 0);
        assert!(result.adaptive_resizes > 0, "controller should have acted");
        // Low-ILP loop → the adaptive queue shrinks → fewer banks on average
        // than the 10-bank baseline.
        assert!(result.stats.avg_iq_banks_on() < 10.0);
    }

    #[test]
    fn branch_predictor_learns_the_loop() {
        let program = loop_program(400, 1);
        let result = run(&program, ResizePolicy::Fixed);
        assert!(result.stats.branches >= 400);
        assert!(result.stats.mispredict_rate() < 0.2);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let program = loop_program(150, 3);
        let result = run(&program, ResizePolicy::Fixed);
        let s = &result.stats;
        assert_eq!(s.dispatched, s.iq_writes);
        assert_eq!(s.issued, s.iq_reads);
        assert!(s.issued >= s.committed);
        assert!(s.dispatched >= s.issued);
        assert!(s.iq_occupancy_sum > 0);
        assert!(s.avg_iq_occupancy() <= s.iq_total_entries as f64);
        assert!(s.avg_iq_banks_on() <= s.iq_total_banks as f64);
    }

    /// On a program with no hints, the software-hint policy degenerates to
    /// the fixed baseline bit-for-bit.
    #[test]
    fn policies_agree_where_they_must() {
        let program = loop_program(250, 3);
        let fixed = run(&program, ResizePolicy::Fixed);
        let hinted = run(&program, ResizePolicy::SoftwareHint);
        // No hints in the program → bit-identical behaviour.
        assert_eq!(fixed.stats, hinted.stats);
    }

    /// A hand-hinted loop body drives the region accounting: the hint NOOP
    /// is stripped (counted separately), everything still commits, and the
    /// tight region limit actually stalls dispatch.
    #[test]
    fn software_hints_limit_dispatch_on_a_hinted_program() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 1000);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                // Advertise a tiny region before a wide independent body.
                bb.hint_noop(4);
                for k in 0..8 {
                    bb.addi(int_reg(3 + (k % 6) as u8), int_reg(2), k as i64);
                }
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 300, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let trace = Executor::new(&program).run(200_000).unwrap();
        let fixed = Simulator::new(SimConfig::hpca2005(), &program, &trace, ResizePolicy::Fixed)
            .run()
            .unwrap();
        let hinted = Simulator::new(
            SimConfig::hpca2005(),
            &program,
            &trace,
            ResizePolicy::SoftwareHint,
        )
        .run()
        .unwrap();
        for result in [&fixed, &hinted] {
            assert_eq!(
                result.stats.committed + result.stats.committed_hints,
                trace.len() as u64
            );
            assert!(result.stats.committed_hints >= 300);
        }
        // Only the hint-honouring policy is throttled by the region limit.
        assert_eq!(fixed.stats.dispatch_limit_stall_cycles, 0);
        assert!(hinted.stats.dispatch_limit_stall_cycles > 0);
        assert!(hinted.stats.avg_iq_occupancy() < fixed.stats.avg_iq_occupancy());
    }
}
