//! Compiled execution plans: the "compile-then-execute" backend.
//!
//! The interpreted pipeline ([`crate::pipeline::Simulator`]) re-derives a
//! large amount of *static* information on every run: it chases
//! `&Instruction` pointers through the program structure, re-predicts every
//! branch through the hybrid predictor, re-walks the I-cache tag arrays,
//! and re-classifies every opcode — all of which is a pure function of
//! `(program, trace, SimConfig)` and therefore identical across the many
//! runs a sweep, a matrix job or a `repro serve` batch performs on the
//! same cell shape.
//!
//! [`ExecPlan::build`] lowers everything static once, into flat
//! struct-of-arrays form:
//!
//! * decoded operands — destination / source architectural registers,
//!   functional-unit class, execution latency, hint sites and values,
//!   memory addresses (with the simulator's default already applied),
//! * the complete front-end outcome stream — per-instruction branch
//!   direction mispredictions, BTB stalls, fetch-group boundaries, and the
//!   L1 I-cache hit/miss sequence (the predictor and the L1i are touched
//!   only by fetch, in strict trace order, on purely static inputs, so
//!   their entire evolution is precomputable),
//! * every activity counter whose final value is statically determined
//!   (committed/dispatched/issued counts, branch and I-cache totals,
//!   register-file port counts, wakeup broadcasts — the counters are only
//!   observed after the run, never during it).
//!
//! [`PlanSimulator`] then replays the plan through the identical cycle
//! loop, touching only *dynamic* state: the shared L2 (its interleave of
//! instruction and data refills depends on run-time timing), the D-cache,
//! renaming, the issue queue, the event calendar and the adaptive
//! controller. The result is **bit-identical** to the interpreted backend
//! — same cycles, same `ActivityStats` — which the differential tests
//! below and the cross-backend proptests pin down.
//!
//! One plan serves all three resize policies of a cell shape: nothing in
//! the plan depends on [`ResizePolicy`].

use crate::branch::BranchPredictor;
use crate::cache::{Cache, CacheHierarchy};
use crate::config::SimConfig;
use crate::pipeline::{max_completion_latency, EventWheel, SimError, SimResult};
use crate::plan_queue::{PlanQueue, ReadyCandidate};
use crate::regfile::RenamedRegFile;
use crate::resize::{AdaptiveController, AdaptiveObservation, ResizePolicy};
use crate::stats::ActivityStats;
use sdiq_isa::{ArchReg, FuClass, Program, RegClass, Trace};

/// Per-instruction static flags (bit positions in [`InstRecord::flags`]).
/// Public so `sdiq-verify`'s plan lint can decode records.
pub mod flag {
    /// The instruction is a special NOOP, stripped at the final decode
    /// stage.
    pub const IS_HINT: u16 = 1 << 0;
    /// The instruction carries an `iq_hint` value (hint NOOP or tag).
    pub const HAS_HINT: u16 = 1 << 1;
    /// The instruction is a load (latency comes from the data cache).
    pub const IS_LOAD: u16 = 1 << 2;
    /// The instruction is a store (cache access, 1-cycle completion).
    pub const IS_STORE: u16 = 1 << 3;
    /// Fetch blocks behind this instruction until it resolves: its branch
    /// direction was mispredicted.
    pub const MISPREDICTED: u16 = 1 << 4;
    /// The taken control transfer missed in the BTB (2-cycle fetch bubble).
    pub const BTB_STALL: u16 = 1 << 5;
    /// Fetch stops after this instruction (taken branch or unconditional
    /// control transfer).
    pub const ENDS_GROUP: u16 = 1 << 6;
    /// This instruction begins a new I-cache line: fetch performs one
    /// I-cache access here.
    pub const NEW_LINE: u16 = 1 << 7;
    /// That access misses in the L1i; the run-time completes it with a
    /// shared-L2 refill and stalls fetch for the returned latency.
    pub const L1I_MISS: u16 = 1 << 8;
}

/// A fully lowered, allocation-free execution plan for one
/// `(program, trace, SimConfig)` cell shape. Build once with
/// [`ExecPlan::build`], run any number of times with [`PlanSimulator`].
#[derive(Debug, Clone)]
pub struct ExecPlan {
    config: SimConfig,
    workload: String,
    /// Static per-instruction record (one packed stream: fetch, dispatch
    /// and issue all walk a single array instead of five).
    insts: Vec<InstRecord>,
    /// Memory address per instruction, with the simulator's default
    /// already applied for non-memory opcodes.
    mem_addr: Vec<u64>,
    /// Fetch addresses of the L1i-missing accesses, in program order
    /// (consumed by a cursor: the misses are replayed exactly once each).
    imiss_addrs: Vec<u64>,
    /// Every activity counter whose final value is a pure function of the
    /// plan inputs, pre-totalled; the run adds only the dynamic counters.
    baked: ActivityStats,
}

/// One instruction's fully decoded static side, packed to 12 bytes so the
/// hot stages stream one cache-friendly array. Fields are public (read-only
/// in practice — the plan hands out `&[InstRecord]`) so `sdiq-verify`'s
/// plan lint can round-trip every record against its source instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstRecord {
    /// Static flags (see [`flag`]).
    pub flags: u16,
    /// Dense destination architectural register ([`NO_REG`] = none).
    pub dest: u16,
    /// Dense source architectural registers ([`NO_REG`] = absent).
    pub srcs: [u16; 2],
    /// Functional-unit class.
    pub fu: FuClass,
    /// Fixed execution latency (`opcode.latency().max(1)`); loads/stores
    /// take theirs from the cache hierarchy.
    pub latency: u8,
    /// `iq_hint` value (meaningful when [`flag::HAS_HINT`]).
    pub hint: u8,
}

impl ExecPlan {
    /// Lowers `program` / `trace` under `config` into a plan. The trace
    /// must have been produced by executing exactly this program (the
    /// same contract as [`crate::Simulator::new`]).
    pub fn build(config: SimConfig, program: &Program, trace: &Trace) -> Self {
        let len = trace.committed.len();
        let mut plan = ExecPlan {
            config,
            workload: program.name.clone(),
            insts: Vec::with_capacity(len),
            mem_addr: Vec::with_capacity(len),
            imiss_addrs: Vec::new(),
            baked: ActivityStats {
                iq_total_banks: config.iq.banks() as u64,
                iq_total_entries: config.iq.entries as u64,
                int_rf_total_banks: config.int_rf.banks() as u64,
                fp_rf_total_banks: config.fp_rf.banks() as u64,
                ..ActivityStats::default()
            },
        };

        // The front-end models evolve over purely static inputs, in strict
        // trace order, exactly once per site — so their full histories are
        // computed here and never touched again.
        let mut bpred = BranchPredictor::new(config.branch);
        let mut l1i = Cache::new(config.l1i);
        let line_bytes = config.l1i.line_bytes as u64;
        let mut last_fetched_line: Option<u64> = None;

        // Resolve every dynamic instruction's static side; consecutive
        // trace entries overwhelmingly share a basic block, so the block's
        // instruction slice is looked up only on block changes.
        let mut cached_block: Option<(sdiq_isa::ProcId, sdiq_isa::BlockId)> = None;
        let mut block_insts: &[sdiq_isa::Instruction] = &[];

        for (idx, dyn_inst) in trace.committed.iter().enumerate() {
            let loc = dyn_inst.loc;
            if cached_block != Some((loc.proc, loc.block)) {
                block_insts = program
                    .proc(loc.proc)
                    .block(loc.block)
                    .instructions
                    .as_slice();
                cached_block = Some((loc.proc, loc.block));
            }
            let inst = &block_insts[loc.index];
            let addr = dyn_inst.addr;
            let mut flags: u16 = 0;

            // --- I-cache: one access per new cache line touched ------------
            let line = addr / line_bytes;
            if last_fetched_line != Some(line) {
                last_fetched_line = Some(line);
                flags |= flag::NEW_LINE;
                if !l1i.access(addr) {
                    flags |= flag::L1I_MISS;
                    plan.baked.icache_misses += 1;
                    plan.imiss_addrs.push(addr);
                }
            }

            // --- branch prediction -----------------------------------------
            if inst.opcode.is_cond_branch() {
                plan.baked.branches += 1;
                let actual_taken = dyn_inst.taken.unwrap_or(false);
                let prediction = bpred.predict_direction(addr);
                bpred.update_direction(addr, prediction, actual_taken);
                if prediction.taken != actual_taken {
                    flags |= flag::MISPREDICTED;
                    plan.baked.mispredicted_branches += 1;
                }
                if actual_taken {
                    flags |= flag::ENDS_GROUP;
                    let target = trace
                        .committed
                        .get(idx + 1)
                        .map(|d| d.addr)
                        .unwrap_or(addr + 4);
                    if bpred.predict_target(addr) != Some(target) {
                        plan.baked.btb_misses += 1;
                        flags |= flag::BTB_STALL;
                    }
                    bpred.update_target(addr, target);
                }
            } else if inst.opcode.is_control() {
                flags |= flag::ENDS_GROUP;
                let target = trace
                    .committed
                    .get(idx + 1)
                    .map(|d| d.addr)
                    .unwrap_or(addr + 4);
                if bpred.predict_target(addr) != Some(target) {
                    plan.baked.btb_misses += 1;
                    flags |= flag::BTB_STALL;
                }
                bpred.update_target(addr, target);
            }

            // --- decode ----------------------------------------------------
            if inst.is_hint_noop() {
                flags |= flag::IS_HINT;
                plan.baked.committed_hints += 1;
            } else {
                // Every non-hint trace entry dispatches, issues and commits
                // exactly once, reading its sources and (if present)
                // broadcasting its destination — all static totals.
                plan.baked.committed += 1;
                plan.baked.dispatched += 1;
                plan.baked.issued += 1;
                plan.baked.iq_writes += 1;
                plan.baked.iq_reads += 1;
                if inst.low_energy {
                    plan.baked.committed_low_energy += 1;
                }
                if let Some(dest) = inst.dest {
                    plan.baked.wakeup_broadcasts += 1;
                    match dest.class() {
                        RegClass::Int => plan.baked.int_rf_writes += 1,
                        RegClass::Fp => plan.baked.fp_rf_writes += 1,
                    }
                }
                for src in inst.srcs.iter().flatten() {
                    match src.class() {
                        RegClass::Int => plan.baked.int_rf_reads += 1,
                        RegClass::Fp => plan.baked.fp_rf_reads += 1,
                    }
                }
            }
            if inst.iq_hint.is_some() {
                flags |= flag::HAS_HINT;
            }
            if inst.opcode.is_load() {
                flags |= flag::IS_LOAD;
            }
            if inst.opcode.is_store() {
                flags |= flag::IS_STORE;
            }

            let mut srcs = [NO_REG; 2];
            for (slot, src) in srcs.iter_mut().zip(inst.srcs.iter()) {
                if let Some(arch) = src {
                    *slot = dense_arch(*arch);
                }
            }
            plan.insts.push(InstRecord {
                flags,
                dest: inst.dest.map_or(NO_REG, dense_arch),
                srcs,
                fu: inst.opcode.fu_class(),
                latency: inst.opcode.latency().max(1) as u8,
                hint: inst.iq_hint.unwrap_or(0),
            });
            plan.mem_addr.push(dyn_inst.mem_addr.unwrap_or(0x1000_0000));
        }
        // Full-queue wakeup comparisons are `2 × capacity` per broadcast
        // and the broadcast count is static, so the total is too.
        plan.baked.wakeup_comparisons_full =
            plan.baked.wakeup_broadcasts * 2 * config.iq.entries as u64;
        plan
    }

    /// Number of dynamic instructions the plan covers.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the plan covers an empty trace.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The simulator configuration the plan was lowered for.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The workload (program) name, for report labelling.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The packed per-instruction records, in trace order.
    pub fn records(&self) -> &[InstRecord] {
        &self.insts
    }

    /// The per-instruction memory addresses (the simulator's default
    /// already applied for non-memory opcodes), in trace order.
    pub fn mem_addrs(&self) -> &[u64] {
        &self.mem_addr
    }

    /// Fetch addresses of the L1i-missing accesses, in program order.
    pub fn imiss_addrs(&self) -> &[u64] {
        &self.imiss_addrs
    }

    /// The statically pre-totalled activity counters.
    pub fn baked_stats(&self) -> &ActivityStats {
        &self.baked
    }

    /// Mutable access to the packed records, for seeded-defect tests that
    /// deliberately corrupt a plan. Not part of the stable API.
    #[doc(hidden)]
    pub fn records_mut(&mut self) -> &mut [InstRecord] {
        &mut self.insts
    }
}

/// "No register" sentinel for the dense register encoding.
pub const NO_REG: u16 = u16::MAX;

/// Dense encoding of a register: `index << 1 | class` (Int = 0, Fp = 1).
/// The same scheme covers architectural registers (in the plan) and
/// physical registers (in [`InFlight`] and the consumer index) — both fit
/// one `u16`, and the class is recoverable from bit 0 without touching a
/// [`PhysReg`] / [`ArchReg`] struct. Public so the plan lint recomputes
/// the expected encoding independently.
#[inline]
pub fn dense_arch(arch: ArchReg) -> u16 {
    let class_bit = match arch.class() {
        RegClass::Int => 0,
        RegClass::Fp => 1,
    };
    ((arch.index() as u16) << 1) | class_bit
}

/// In-flight (ROB-resident) instruction of the compiled backend. Leaner
/// than the interpreted twin: sources are not kept (read-port totals are
/// baked), opcode / memory address / latency live in the plan, and the
/// destination registers are dense `u16`s ([`NO_REG`] = none).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    trace_idx: u32,
    dest: u16,
    /// Previous mapping of the destination architectural register,
    /// released at commit.
    prev_dest: u16,
    mispredicted: bool,
    /// Set at writeback; commit retires completed entries in order.
    /// (Between dispatch and writeback no stage distinguishes queued from
    /// executing, so a single bit suffices.)
    completed: bool,
}

/// Filler for unoccupied ROB ring slots.
const INFLIGHT_EMPTY: InFlight = InFlight {
    trace_idx: 0,
    dest: NO_REG,
    prev_dest: NO_REG,
    mispredicted: false,
    completed: false,
};

/// The compiled-backend simulator: replays an [`ExecPlan`] through the
/// cycle loop, touching only dynamic state. Create one per run with
/// [`PlanSimulator::new`] and call [`PlanSimulator::run`]; results are
/// bit-identical to [`crate::Simulator`] on the same inputs.
#[derive(Debug)]
pub struct PlanSimulator<'p> {
    plan: &'p ExecPlan,
    policy: ResizePolicy,
    uses_hints: bool,

    caches: CacheHierarchy,
    iq: PlanQueue,
    int_rf: RenamedRegFile,
    fp_rf: RenamedRegFile,
    adaptive: Option<AdaptiveController>,

    /// Fetch queue as a ring of decode-ready cycles: the queued trace
    /// indices are always the consecutive range
    /// `next_dispatch..next_fetch`, so only the per-entry ready cycle
    /// needs storing — at `fq_ready[idx & (fq_ready.len() - 1)]` (the
    /// ring is sized to the next power of two ≥ `fetch_queue_entries`, so
    /// live entries never collide; masking with the length keeps the
    /// indexing bounds-check-free).
    fq_ready: Vec<u64>,
    /// Trace index at the front of the fetch queue (next to dispatch).
    next_dispatch: usize,
    next_fetch: usize,
    fetch_stalled_until: u64,
    /// Trace index of the unresolved mispredicted branch blocking fetch.
    fetch_blocked_by: Option<usize>,
    /// `idx + 1` of the last instruction whose (precomputed) I-cache
    /// access has been performed — the resume-after-refill guard: when a
    /// miss stalls fetch mid-group, the retried instruction must not
    /// access again (the interpreted backend gets this from
    /// `last_fetched_line`).
    fetch_line_done: usize,
    /// Next unconsumed entry of [`ExecPlan::imiss_addrs`].
    imiss_cursor: usize,

    /// In-flight ring, doubling as the ROB: instruction `id` lives at
    /// `rob[id as usize & (rob.len() - 1)]` (the ring is sized to the next
    /// power of two ≥ the ROB capacity, so the live id range
    /// `inflight_base..next_id` never collides; masking with the length
    /// keeps the indexing bounds-check-free). Occupancy is
    /// `next_id - inflight_base`.
    rob: Vec<InFlight>,
    inflight_base: u64,
    rob_limit: usize,
    next_id: u64,
    completions: EventWheel,
    /// Persistent age-ordered (= id-ordered) list of ready candidates.
    ready: Vec<ReadyCandidate>,
    /// Scratch buffer for entries woken by one broadcast.
    woken: Vec<ReadyCandidate>,
    /// Hint NOOPs stripped during the current dispatch step.
    strip_count_this_cycle: usize,

    stats: ActivityStats,
}

impl<'p> PlanSimulator<'p> {
    /// Creates a simulator replaying `plan` under `policy`.
    pub fn new(plan: &'p ExecPlan, policy: ResizePolicy) -> Self {
        let config = plan.config;
        let adaptive = match policy {
            ResizePolicy::Adaptive(cfg) => Some(AdaptiveController::new(
                cfg,
                config.iq.entries,
                config.widths.rob_capacity,
            )),
            _ => None,
        };
        // Dense register universe the consumer index must cover
        // (`index << 1 | class`); only the adaptive policy observes age
        // ranks, so only it pays for the Fenwick tree.
        let dense_regs = 2 * config
            .int_rf
            .regs_per_class
            .max(config.fp_rf.regs_per_class);
        let track_age = adaptive.is_some();
        let fq_len = config.fetch_queue_entries.next_power_of_two();
        let rob_len = config.widths.rob_capacity.next_power_of_two();
        PlanSimulator {
            plan,
            uses_hints: policy.uses_hints(),
            policy,
            caches: CacheHierarchy::new(&config),
            iq: PlanQueue::new(
                config.iq.entries,
                config.iq.bank_size,
                dense_regs,
                track_age,
            ),
            int_rf: RenamedRegFile::new(RegClass::Int, config.int_rf),
            fp_rf: RenamedRegFile::new(RegClass::Fp, config.fp_rf),
            adaptive,
            fq_ready: vec![0; fq_len],
            next_dispatch: 0,
            next_fetch: 0,
            fetch_stalled_until: 0,
            fetch_blocked_by: None,
            fetch_line_done: 0,
            imiss_cursor: 0,
            rob: vec![INFLIGHT_EMPTY; rob_len],
            inflight_base: 0,
            rob_limit: config.widths.rob_capacity,
            next_id: 0,
            completions: EventWheel::new(max_completion_latency(&config)),
            ready: Vec::new(),
            woken: Vec::new(),
            strip_count_this_cycle: 0,
            // Dynamic counters accumulate on top of the baked totals.
            stats: plan.baked.clone(),
        }
    }

    /// Ring index of in-flight instruction `id`.
    #[inline]
    fn inflight_index(&self, id: u64) -> usize {
        id as usize & (self.rob.len() - 1)
    }

    /// Current ROB occupancy.
    #[inline]
    fn inflight_len(&self) -> usize {
        (self.next_id - self.inflight_base) as usize
    }

    /// Runs the plan to completion and returns the activity counters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the pipeline stops making
    /// progress (a model bug, not an expected outcome).
    pub fn run(mut self) -> Result<SimResult, SimError> {
        let total = self.plan.len();
        let mut cycle: u64 = 0;
        let mut committed_total: usize = 0;
        let mut last_progress_cycle: u64 = 0;
        let mut last_committed: usize = 0;
        const PROGRESS_WINDOW: u64 = 100_000;

        while committed_total < total {
            // --- 1. writeback ------------------------------------------------
            let due = self.completions.take_due(cycle);
            for &id in &due {
                self.writeback(id, cycle);
            }
            self.completions.recycle(due);

            // --- 2. commit ----------------------------------------------------
            committed_total += self.commit();

            // --- 3. issue -----------------------------------------------------
            let observation = self.issue(cycle);

            // --- 4. dispatch --------------------------------------------------
            self.dispatch(cycle);
            committed_total += self.strip_count_this_cycle;
            self.strip_count_this_cycle = 0;

            // --- 5. fetch -----------------------------------------------------
            self.fetch(cycle);

            // --- 6. per-cycle statistics and adaptive control ------------------
            self.collect_cycle_stats();
            if let Some(controller) = self.adaptive.as_mut() {
                if let Some(decision) = controller.on_cycle(cycle, observation) {
                    self.iq.set_hard_limit(Some(decision.iq_limit));
                    self.rob_limit = decision.rob_limit;
                }
            }

            // --- progress guard ------------------------------------------------
            if committed_total > last_committed {
                last_committed = committed_total;
                last_progress_cycle = cycle;
            } else if cycle - last_progress_cycle > PROGRESS_WINDOW {
                return Err(SimError::Deadlock {
                    cycle,
                    detail: format!(
                        "committed {committed_total}/{total}, rob={} iq={} fetchq={} next_fetch={}",
                        self.inflight_len(),
                        self.iq.occupancy(),
                        self.next_fetch - self.next_dispatch,
                        self.next_fetch
                    ),
                });
            }

            cycle += 1;
        }

        self.stats.cycles = cycle.max(1);
        let (dcache_accesses, dcache_misses) = self.caches.dcache_stats();
        self.stats.dcache_accesses = dcache_accesses;
        self.stats.dcache_misses = dcache_misses;
        let adaptive_resizes = self.adaptive.as_ref().map_or(0, |a| a.resizes());
        Ok(SimResult {
            stats: self.stats,
            adaptive_resizes,
        })
    }

    fn writeback(&mut self, id: u64, cycle: u64) {
        let index = self.inflight_index(id);
        let inst = &mut self.rob[index];
        inst.completed = true;
        let (dest, mispredicted, trace_idx) =
            (inst.dest, inst.mispredicted, inst.trace_idx as usize);
        if dest != NO_REG {
            // Write the register file and broadcast into the issue queue
            // (port, broadcast and full-comparison totals are baked; the
            // non-empty/gated counts depend on the queue's dynamic
            // contents).
            let rf = if dest & 1 == 0 {
                &mut self.int_rf
            } else {
                &mut self.fp_rf
            };
            rf.write_value_index((dest >> 1) as usize);
            let (non_empty, gated) = self.iq.wakeup(dest, &mut self.woken);
            self.stats.wakeup_comparisons_nonempty += non_empty;
            self.stats.wakeup_comparisons_gated += gated;
            while let Some(candidate) = self.woken.pop() {
                let position = self.ready.partition_point(|c| c.id < candidate.id);
                self.ready.insert(position, candidate);
            }
        }
        if mispredicted && self.fetch_blocked_by == Some(trace_idx) {
            self.fetch_blocked_by = None;
            self.fetch_stalled_until = self
                .fetch_stalled_until
                .max(cycle + 1 + u64::from(self.plan.config.branch.mispredict_redirect_penalty));
        }
    }

    fn commit(&mut self) -> usize {
        let width = self.plan.config.widths.pipeline_width;
        let mut committed = 0;
        while committed < width && self.inflight_base < self.next_id {
            let inst = self.rob[self.inflight_base as usize & (self.rob.len() - 1)];
            if !inst.completed {
                break;
            }
            self.inflight_base += 1;
            if inst.prev_dest != NO_REG {
                let rf = if inst.prev_dest & 1 == 0 {
                    &mut self.int_rf
                } else {
                    &mut self.fp_rf
                };
                rf.release_index((inst.prev_dest >> 1) as usize);
            }
            committed += 1;
        }
        committed
    }

    fn issue(&mut self, cycle: u64) -> AdaptiveObservation {
        let issue_width = self.plan.config.widths.pipeline_width;
        let fu_counts = self.plan.config.fu_counts;
        let limit = self.iq.hard_limit().unwrap_or_else(|| self.iq.capacity());
        let bank_size = self.plan.config.iq.bank_size;
        let track_youngest = self.adaptive.is_some() && self.iq.occupancy() + bank_size > limit;
        let mut fu_used = [0usize; FuClass::COUNT];
        let mut issued = 0usize;
        let mut observation = AdaptiveObservation::default();

        let mut candidates = std::mem::take(&mut self.ready);
        let mut kept = 0usize;
        for index in 0..candidates.len() {
            let candidate = candidates[index];
            if issued >= issue_width {
                candidates[kept] = candidate;
                kept += 1;
                continue;
            }
            // The candidate carries its trace index, so the static side
            // (FU class, flags, latency) streams from the plan record and
            // neither the queue nor the ROB stores it.
            let trace_idx = candidate.trace_idx as usize;
            let rec = &self.plan.insts[trace_idx];
            let fu = rec.fu;
            let class = fu.index();
            if fu_used[class] >= fu_counts.for_class(fu) {
                candidates[kept] = candidate;
                kept += 1;
                continue;
            }
            fu_used[class] += 1;
            observation.issued += 1;
            if track_youngest {
                let rank = self.iq.age_rank(candidate.slot as usize) + issued;
                if rank + bank_size >= limit {
                    observation.issued_from_youngest_bank += 1;
                }
            }
            issued += 1;

            let id = candidate.id;
            self.iq.remove(candidate.slot as usize);

            // Execution latency (register read-port totals are baked; the
            // reads have no other observable effect).
            let latency = if rec.flags & flag::IS_LOAD != 0 {
                let access = self.caches.access_data(self.plan.mem_addr[trace_idx]);
                if access.l2_miss {
                    self.stats.l2_misses += 1;
                }
                u64::from(1 + access.latency)
            } else if rec.flags & flag::IS_STORE != 0 {
                // Stores update the cache but retire from the pipeline's
                // point of view after address generation.
                let access = self.caches.access_data(self.plan.mem_addr[trace_idx]);
                if access.l2_miss {
                    self.stats.l2_misses += 1;
                }
                1
            } else {
                u64::from(rec.latency)
            };
            self.completions.schedule(cycle, cycle + latency, id);
        }
        candidates.truncate(kept);
        self.ready = candidates;
        observation
    }

    fn dispatch(&mut self, cycle: u64) {
        let width = self.plan.config.widths.pipeline_width;
        let rob_limit = self.rob_limit.min(self.plan.config.widths.rob_capacity);
        let mut dispatched = 0usize;
        while dispatched < width {
            if self.next_dispatch >= self.next_fetch {
                break;
            }
            let trace_idx = self.next_dispatch;
            if self.fq_ready[trace_idx & (self.fq_ready.len() - 1)] > cycle {
                break;
            }
            let rec = self.plan.insts[trace_idx];
            let flags = rec.flags;

            // Hint handling, both shapes behind one combined-flag branch:
            // a tag on a real instruction applies at decode at no slot
            // cost; a special NOOP applies and then strips at the final
            // decode stage, consuming its dispatch slot without ever
            // entering the issue queue.
            if flags & (flag::IS_HINT | flag::HAS_HINT) != 0 {
                if self.uses_hints && flags & flag::HAS_HINT != 0 {
                    self.iq.apply_hint(rec.hint as usize);
                }
                if flags & flag::IS_HINT != 0 {
                    self.next_dispatch += 1;
                    self.strip_count_this_cycle += 1;
                    dispatched += 1;
                    continue;
                }
            }

            // Structural checks.
            if !self.iq.can_dispatch() {
                if self.iq.max_new_range().is_some() || self.iq.hard_limit().is_some() {
                    self.stats.dispatch_limit_stall_cycles += 1;
                }
                break;
            }
            if self.inflight_len() >= rob_limit {
                self.stats.rob_full_stall_cycles += 1;
                break;
            }
            let dest_arch = rec.dest;
            if dest_arch != NO_REG {
                let has_free = if dest_arch & 1 == 0 {
                    self.int_rf.has_free()
                } else {
                    self.fp_rf.has_free()
                };
                if !has_free {
                    self.stats.rename_stall_cycles += 1;
                    break;
                }
            }

            // Rename (class travels as bit 0 of the dense encoding).
            let srcs = rec.srcs;
            let mut ops = [NO_REG; 2];
            let mut wait = 0u8;
            for (operand, (slot, &src)) in ops.iter_mut().zip(srcs.iter()).enumerate() {
                if src != NO_REG {
                    let rf = if src & 1 == 0 {
                        &self.int_rf
                    } else {
                        &self.fp_rf
                    };
                    let phys = rf.rename_source_index((src >> 1) as usize);
                    *slot = ((phys as u16) << 1) | (src & 1);
                    wait |= u8::from(!rf.is_ready_index(phys)) << operand;
                }
            }
            let (dest, prev_dest) = if dest_arch != NO_REG {
                let rf = if dest_arch & 1 == 0 {
                    &mut self.int_rf
                } else {
                    &mut self.fp_rf
                };
                let (new, old) = rf
                    .allocate_dest_index((dest_arch >> 1) as usize)
                    .expect("free register checked above");
                (
                    ((new as u16) << 1) | (dest_arch & 1),
                    ((old as u16) << 1) | (dest_arch & 1),
                )
            } else {
                (NO_REG, NO_REG)
            };

            let id = self.next_id;
            self.next_id += 1;
            let (slot, ready_now) = self.iq.dispatch(id, trace_idx as u32, ops, wait);
            // Ready on arrival → joins the ready list immediately. Ids are
            // monotonic, so appending keeps the list age-ordered.
            if ready_now {
                self.ready.push(ReadyCandidate {
                    id,
                    slot: slot as u32,
                    trace_idx: trace_idx as u32,
                });
            }

            let rob_mask = self.rob.len() - 1;
            self.rob[id as usize & rob_mask] = InFlight {
                trace_idx: trace_idx as u32,
                dest,
                prev_dest,
                mispredicted: flags & flag::MISPREDICTED != 0,
                completed: false,
            };
            self.next_dispatch += 1;
            dispatched += 1;
        }
    }

    fn fetch(&mut self, cycle: u64) {
        if self.fetch_blocked_by.is_some() || cycle < self.fetch_stalled_until {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        let width = self.plan.config.widths.pipeline_width;
        let mut fetched = 0usize;
        while fetched < width
            && self.next_fetch < self.plan.len()
            && self.next_fetch - self.next_dispatch < self.plan.config.fetch_queue_entries
        {
            let idx = self.next_fetch;
            let flags = self.plan.insts[idx].flags;

            // I-cache: the L1i outcome is precomputed; only the shared-L2
            // part of a miss runs here. The `fetch_line_done` guard keeps
            // the access from repeating when fetch resumes on this same
            // instruction after the refill stall.
            if flags & flag::NEW_LINE != 0 && self.fetch_line_done <= idx {
                self.fetch_line_done = idx + 1;
                if flags & flag::L1I_MISS != 0 {
                    let addr = self.plan.imiss_addrs[self.imiss_cursor];
                    self.imiss_cursor += 1;
                    let access = self.caches.refill_instruction_after_l1i_miss(addr);
                    if access.l2_miss {
                        self.stats.l2_misses += 1;
                    }
                    // Refill stall: resume fetching this instruction after
                    // the miss is served.
                    self.fetch_stalled_until = cycle + u64::from(access.latency);
                    break;
                }
            }

            if flags & flag::BTB_STALL != 0 {
                self.fetch_stalled_until = self.fetch_stalled_until.max(cycle + 2);
            }

            let fq_mask = self.fq_ready.len() - 1;
            self.fq_ready[idx & fq_mask] = cycle + u64::from(self.plan.config.decode_stages);
            self.next_fetch += 1;
            fetched += 1;

            if flags & flag::MISPREDICTED != 0 {
                // Fetch cannot proceed past a mispredicted branch until it
                // resolves at writeback.
                self.fetch_blocked_by = Some(idx);
                break;
            }
            if flags & flag::ENDS_GROUP != 0 {
                break;
            }
        }
    }

    fn collect_cycle_stats(&mut self) {
        self.stats.iq_occupancy_sum += self.iq.occupancy() as u64;
        let bank_size = self.plan.config.iq.bank_size.max(1);
        let banks_on = match self.iq.hard_limit() {
            Some(limit) => limit.div_ceil(bank_size).min(self.plan.config.iq.banks()),
            None => self.iq.banks_on(),
        };
        self.stats.iq_banks_on_sum += banks_on as u64;
        self.stats.rob_occupancy_sum += self.inflight_len() as u64;
        self.stats.int_rf_occupancy_sum += self.int_rf.occupancy() as u64;
        self.stats.int_rf_banks_on_sum += self.int_rf.banks_on() as u64;
        self.stats.fp_rf_occupancy_sum += self.fp_rf.occupancy() as u64;
        self.stats.fp_rf_banks_on_sum += self.fp_rf.banks_on() as u64;
    }
}

// `policy` is carried for debugging/display parity with the interpreted
// backend even though only `uses_hints` and `adaptive` derive from it.
impl PlanSimulator<'_> {
    /// The resize policy this simulator replays under.
    pub fn policy(&self) -> ResizePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Simulator;
    use crate::resize::AdaptiveConfig;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Executor;

    fn loop_program(trips: i64, ilp: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 1000);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                for k in 0..ilp {
                    bb.addi(int_reg(3 + (k % 6) as u8), int_reg(2), k as i64);
                }
                bb.load(int_reg(10), int_reg(2), 0);
                bb.addi(int_reg(11), int_reg(10), 1);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), trips, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    fn hinted_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 1000);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                bb.hint_noop(4);
                for k in 0..8 {
                    bb.addi(int_reg(3 + (k % 6) as u8), int_reg(2), k as i64);
                }
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 300, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    fn assert_backends_agree(program: &Program, config: SimConfig, policy: ResizePolicy) {
        let trace = Executor::new(program).run(200_000).unwrap();
        let interpreted = Simulator::new(config, program, &trace, policy)
            .run()
            .unwrap();
        let plan = ExecPlan::build(config, program, &trace);
        let compiled = PlanSimulator::new(&plan, policy).run().unwrap();
        assert_eq!(
            interpreted.stats, compiled.stats,
            "ActivityStats must be bit-identical across backends"
        );
        assert_eq!(interpreted.adaptive_resizes, compiled.adaptive_resizes);
    }

    #[test]
    fn compiled_backend_matches_interpreted_for_all_policies() {
        let program = loop_program(200, 4);
        for policy in [
            ResizePolicy::Fixed,
            ResizePolicy::SoftwareHint,
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        ] {
            assert_backends_agree(&program, SimConfig::hpca2005(), policy);
        }
    }

    #[test]
    fn compiled_backend_matches_interpreted_on_hinted_program() {
        let program = hinted_program();
        for policy in [ResizePolicy::Fixed, ResizePolicy::SoftwareHint] {
            assert_backends_agree(&program, SimConfig::hpca2005(), policy);
        }
    }

    #[test]
    fn compiled_backend_matches_interpreted_on_small_machine() {
        // The small configuration stresses structural stalls (ROB, rename,
        // fetch queue) far harder than Table 1.
        let program = loop_program(400, 6);
        for policy in [
            ResizePolicy::Fixed,
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        ] {
            assert_backends_agree(&program, SimConfig::small_for_tests(), policy);
        }
    }

    #[test]
    fn one_plan_serves_every_policy() {
        let program = hinted_program();
        let trace = Executor::new(&program).run(200_000).unwrap();
        let config = SimConfig::hpca2005();
        let plan = ExecPlan::build(config, &program, &trace);
        // The same plan instance replays under all three policies and
        // still matches the interpreted backend per policy.
        for policy in [
            ResizePolicy::Fixed,
            ResizePolicy::SoftwareHint,
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        ] {
            let interpreted = Simulator::new(config, &program, &trace, policy)
                .run()
                .unwrap();
            let compiled = PlanSimulator::new(&plan, policy).run().unwrap();
            assert_eq!(interpreted.stats, compiled.stats, "policy {policy:?}");
        }
    }

    #[test]
    fn plan_bakes_static_totals() {
        let program = hinted_program();
        let trace = Executor::new(&program).run(200_000).unwrap();
        let plan = ExecPlan::build(SimConfig::hpca2005(), &program, &trace);
        let baked = &plan.baked;
        assert_eq!(
            baked.committed + baked.committed_hints,
            trace.len() as u64,
            "every trace entry commits or strips"
        );
        assert!(baked.committed_hints >= 300, "one hint per iteration");
        assert_eq!(baked.dispatched, baked.committed);
        assert_eq!(baked.iq_writes, baked.dispatched);
        assert_eq!(baked.iq_reads, baked.issued);
        assert!(baked.branches >= 300);
        assert_eq!(plan.len(), trace.len());
        assert_eq!(plan.workload(), program.name);
    }

    #[test]
    fn empty_trace_runs_to_a_single_cycle() {
        let program = loop_program(1, 1);
        let trace = Executor::new(&program).run(200_000).unwrap();
        let plan = ExecPlan::build(SimConfig::hpca2005(), &program, &trace);
        let result = PlanSimulator::new(&plan, ResizePolicy::Fixed)
            .run()
            .unwrap();
        assert!(result.stats.cycles >= 1);
    }
}
