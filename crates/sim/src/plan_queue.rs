//! Compact issue queue for the compiled backend ([`crate::plan`]).
//!
//! Semantically a twin of [`crate::issue_queue::IssueQueue`] — which remains
//! the interpreted backend's queue and the differential oracle — but laid
//! out for replay speed:
//!
//! * **Struct-of-arrays slots.** Ids, FU classes and operand state live in
//!   parallel flat arrays instead of `Vec<Option<IqEntry>>`; occupancy is a
//!   bitmask, so the head-advance walk of `remove` becomes a word-wise
//!   next-set-bit scan.
//! * **Packed waiters.** The consumer index stores `slot << 1 | operand` as
//!   a `u32` and is pre-sized to the physical-register universe, removing
//!   the grow-check from the dispatch path. Operand readiness is a two-bit
//!   mask per slot (an entry is ready exactly when its mask is zero).
//! * **Pay-for-what-the-policy-observes.** Age ranks come straight off the
//!   occupancy bitmask (a popcount over `[head, slot)`), and `head` — their
//!   only consumer — is only maintained when `track_age` is set, because
//!   only the adaptive policy reads ranks. Region accounting
//!   (`new_head` / `region_count`) only becomes observable once a hint has
//!   set `max_new_range`, so it is maintained only from the first
//!   [`PlanQueue::apply_hint`] on (the hint resets the window, which is
//!   what makes the late start exact, not approximate).
//!
//! Every counter the statistics depend on — occupancy, powered banks,
//! waiting-operand totals (the gated-comparison cost), region occupancy —
//! follows the oracle's update rules verbatim; the cross-backend
//! differential tests in [`crate::plan`] and the proptests pin the
//! equivalence down.

/// A resident entry that became fully ready during a
/// [`PlanQueue::wakeup`] broadcast (or was ready on dispatch).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadyCandidate {
    /// In-flight id of the entry.
    pub id: u64,
    /// Slot the entry occupies.
    pub slot: u32,
    /// Trace index of the instruction — issue streams the static side
    /// (FU class, flags, latency) from the plan record it names.
    pub trace_idx: u32,
}

/// The compiled backend's issue queue. See the module docs.
#[derive(Debug)]
pub(crate) struct PlanQueue {
    capacity: usize,
    bank_size: usize,
    /// Slot occupancy bitmask: slot `s` is resident iff
    /// `occ[s / 64] >> (s % 64) & 1 == 1`.
    occ: Vec<u64>,
    /// In-flight id per slot.
    ids: Vec<u64>,
    /// Trace index per slot (carried so issue never re-derives it from
    /// the ROB).
    tidx: Vec<u32>,
    /// Dense register each operand waits on (meaningful while the
    /// operand's `wait_bits` bit is set).
    op_reg: Vec<[u16; 2]>,
    /// Bits 0/1: operand still waiting for its value. Zero = entry ready.
    wait_bits: Vec<u8>,
    head: usize,
    tail: usize,
    new_head: usize,
    count: usize,
    /// Software region limit; `None` until the first hint (region state is
    /// not maintained before then — the hint resets it).
    max_new_range: Option<usize>,
    /// Hardware resident limit (adaptive policy); `None` = full capacity.
    hard_limit: Option<usize>,
    bank_occupancy: Vec<u32>,
    banks_nonempty: usize,
    /// Filled slots in the circular window `[new_head, tail)`.
    region_count: usize,
    /// Waiting (not-yet-ready) operands across all residents — the gated
    /// wakeup-comparison count of one broadcast.
    waiting_total: u64,
    /// Consumer index: dense register -> packed `slot << 1 | operand`.
    waiters: Vec<Vec<u32>>,
    /// Maintain `head` (the oldest resident) so [`PlanQueue::age_rank`]
    /// can answer; only the adaptive policy observes it.
    track_age: bool,
}

impl PlanQueue {
    /// Creates an empty queue. `dense_regs` is the size of the dense
    /// physical-register universe the consumer index must cover;
    /// `track_age` enables the Fenwick age tree ([`PlanQueue::age_rank`]).
    pub(crate) fn new(
        capacity: usize,
        bank_size: usize,
        dense_regs: usize,
        track_age: bool,
    ) -> Self {
        let banks = capacity.div_ceil(bank_size.max(1));
        PlanQueue {
            capacity,
            bank_size: bank_size.max(1),
            occ: vec![0; capacity.div_ceil(64)],
            ids: vec![0; capacity],
            tidx: vec![0; capacity],
            op_reg: vec![[0; 2]; capacity],
            wait_bits: vec![0; capacity],
            head: 0,
            tail: 0,
            new_head: 0,
            count: 0,
            max_new_range: None,
            hard_limit: None,
            bank_occupancy: vec![0; banks],
            banks_nonempty: 0,
            region_count: 0,
            waiting_total: 0,
            waiters: vec![Vec::new(); dense_regs],
            track_age,
        }
    }

    /// Total capacity in entries.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident instructions.
    pub(crate) fn occupancy(&self) -> usize {
        self.count
    }

    /// Number of banks holding at least one resident instruction. O(1).
    pub(crate) fn banks_on(&self) -> usize {
        self.banks_nonempty
    }

    /// Current software limit, if any.
    pub(crate) fn max_new_range(&self) -> Option<usize> {
        self.max_new_range
    }

    /// Current hardware limit, if any.
    pub(crate) fn hard_limit(&self) -> Option<usize> {
        self.hard_limit
    }

    /// Sets (or clears) the hardware resident-entry limit.
    pub(crate) fn set_hard_limit(&mut self, limit: Option<usize>) {
        self.hard_limit = limit.map(|l| l.clamp(1, self.capacity));
    }

    /// Applies a compiler hint: a new region starts at the current tail.
    pub(crate) fn apply_hint(&mut self, max_new_range: usize) {
        self.new_head = self.tail;
        self.region_count = 0;
        self.max_new_range = Some(max_new_range.max(1));
    }

    #[inline]
    fn is_occupied(&self, slot: usize) -> bool {
        self.occ[slot / 64] >> (slot % 64) & 1 == 1
    }

    #[inline]
    fn next_slot(&self, slot: usize) -> usize {
        let next = slot + 1;
        if next == self.capacity {
            0
        } else {
            next
        }
    }

    #[inline]
    fn circular_distance(&self, from: usize, to: usize) -> usize {
        let diff = to + self.capacity - from;
        if diff >= self.capacity {
            diff - self.capacity
        } else {
            diff
        }
    }

    /// `true` if `slot` lies in the circular window `[new_head, tail)`.
    fn in_region(&self, slot: usize) -> bool {
        self.circular_distance(self.new_head, slot)
            < self.circular_distance(self.new_head, self.tail)
    }

    /// First occupied slot at or cyclically after `start` (the queue must
    /// be non-empty). Word-wise bitmask scan.
    fn next_occupied_from(&self, start: usize) -> usize {
        debug_assert!(self.count > 0);
        let words = self.occ.len();
        let mut word = start / 64;
        let mut mask = !0u64 << (start % 64);
        for _ in 0..=words {
            let bits = self.occ[word] & mask;
            if bits != 0 {
                return word * 64 + bits.trailing_zeros() as usize;
            }
            word += 1;
            if word == words {
                word = 0;
            }
            mask = !0;
        }
        unreachable!("count > 0 implies an occupied slot")
    }

    /// Set occupancy bits in the linear slot range `[from, to)`.
    fn occupied_in_range(&self, from: usize, to: usize) -> usize {
        if from >= to {
            return 0;
        }
        let first = from / 64;
        let last = (to - 1) / 64;
        let lo_mask = !0u64 << (from % 64);
        let hi_mask = !0u64 >> (63 - (to - 1) % 64);
        if first == last {
            return (self.occ[first] & lo_mask & hi_mask).count_ones() as usize;
        }
        let mut total = (self.occ[first] & lo_mask).count_ones();
        for word in &self.occ[first + 1..last] {
            total += word.count_ones();
        }
        total += (self.occ[last] & hi_mask).count_ones();
        total as usize
    }

    /// Number of resident entries older than the one in `slot` — the
    /// occupied count of the circular range `[head, slot)`, straight off
    /// the occupancy bitmask. Only valid when the queue was created with
    /// `track_age` (otherwise `head` is not maintained).
    pub(crate) fn age_rank(&self, slot: usize) -> usize {
        debug_assert!(self.track_age);
        if slot >= self.head {
            self.occupied_in_range(self.head, slot)
        } else {
            self.occupied_in_range(self.head, self.capacity) + self.occupied_in_range(0, slot)
        }
    }

    /// `true` if another instruction may dispatch right now (physical
    /// capacity, software region limit, hardware limit). O(1).
    pub(crate) fn can_dispatch(&self) -> bool {
        if self.count >= self.capacity || self.is_occupied(self.tail) {
            return false;
        }
        if let Some(limit) = self.hard_limit {
            if self.count >= limit {
                return false;
            }
        }
        if let Some(range) = self.max_new_range {
            if self.region_count >= range {
                return false;
            }
        }
        true
    }

    /// Dispatches at the tail. `ops` holds the dense source registers and
    /// `wait` the operand bits that are present but not yet ready (the
    /// caller renames, so it knows both). Returns `(slot, ready_now)`; the
    /// caller must have checked [`PlanQueue::can_dispatch`].
    pub(crate) fn dispatch(
        &mut self,
        id: u64,
        trace_idx: u32,
        ops: [u16; 2],
        wait: u8,
    ) -> (usize, bool) {
        debug_assert!(self.can_dispatch());
        let slot = self.tail;
        let mut pending = wait;
        while pending != 0 {
            let operand = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            let dense = ops[operand];
            self.waiters[dense as usize].push(((slot as u32) << 1) | operand as u32);
            self.waiting_total += 1;
            self.op_reg[slot][operand] = dense;
        }
        self.wait_bits[slot] = wait;
        self.ids[slot] = id;
        self.tidx[slot] = trace_idx;
        self.occ[slot / 64] |= 1 << (slot % 64);
        let bank = slot / self.bank_size;
        self.bank_occupancy[bank] += 1;
        if self.bank_occupancy[bank] == 1 {
            self.banks_nonempty += 1;
        }
        self.tail = self.next_slot(self.tail);
        self.count += 1;
        if self.max_new_range.is_some() {
            // The new resident joins the region window unless the tail
            // wrapped onto `new_head`, which collapses the window.
            if self.tail == self.new_head {
                self.region_count = 0;
            } else {
                self.region_count += 1;
            }
        }
        (slot, wait == 0)
    }

    /// Removes the entry in `slot` (it issued).
    pub(crate) fn remove(&mut self, slot: usize) {
        debug_assert!(self.is_occupied(slot));
        let wait = self.wait_bits[slot];
        if wait != 0 {
            // Drop the entry's still-waiting operands from the consumer
            // index.
            for operand in 0..2 {
                if wait & (1 << operand) != 0 {
                    let packed = ((slot as u32) << 1) | operand as u32;
                    let list = &mut self.waiters[self.op_reg[slot][operand] as usize];
                    let position = list
                        .iter()
                        .position(|&w| w == packed)
                        .expect("waiting operand is indexed");
                    list.swap_remove(position);
                    self.waiting_total -= 1;
                }
            }
            self.wait_bits[slot] = 0;
        }
        if self.max_new_range.is_some() && self.in_region(slot) {
            self.region_count -= 1;
        }
        self.occ[slot / 64] &= !(1 << (slot % 64));
        let bank = slot / self.bank_size;
        self.bank_occupancy[bank] -= 1;
        if self.bank_occupancy[bank] == 0 {
            self.banks_nonempty -= 1;
        }
        self.count -= 1;
        if self.count == 0 {
            self.head = self.tail;
            self.new_head = self.tail;
            self.region_count = 0;
            return;
        }
        if self.track_age {
            // Advance head to the oldest resident (age_rank is relative to
            // it). Nothing else observes `head`, so the non-adaptive
            // policies skip the scan entirely.
            self.head = self.next_occupied_from(self.head);
        }
        if self.max_new_range.is_some() {
            while self.new_head != self.tail && !self.is_occupied(self.new_head) {
                self.new_head = self.next_slot(self.new_head);
            }
        }
    }

    /// Broadcasts a completed dense register, waking exactly the waiting
    /// operands (consumer index). Entries that became fully ready are
    /// pushed onto `ready_out`. Returns the broadcast's
    /// `(non-empty, gated)` comparison counts — the full-queue count is a
    /// static total the plan bakes.
    pub(crate) fn wakeup(&mut self, dense: u16, ready_out: &mut Vec<ReadyCandidate>) -> (u64, u64) {
        let non_empty = 2 * self.count as u64;
        let gated = self.waiting_total;
        if self.waiters[dense as usize].is_empty() {
            return (non_empty, gated);
        }
        // Take the list out to release the borrow; put it back (cleared,
        // capacity retained) afterwards.
        let mut woken = std::mem::take(&mut self.waiters[dense as usize]);
        for &packed in &woken {
            let slot = (packed >> 1) as usize;
            let operand = packed & 1;
            debug_assert!(self.wait_bits[slot] & (1 << operand) != 0);
            self.wait_bits[slot] &= !(1 << operand) as u8;
            self.waiting_total -= 1;
            if self.wait_bits[slot] == 0 {
                ready_out.push(ReadyCandidate {
                    id: self.ids[slot],
                    slot: slot as u32,
                    trace_idx: self.tidx[slot],
                });
            }
        }
        woken.clear();
        self.waiters[dense as usize] = woken;
        (non_empty, gated)
    }
}
