//! Register renaming and the banked physical register files.
//!
//! Table 1: 112 integer and 112 FP physical registers, organised as 14 banks
//! of 8. Architectural registers are renamed onto physical registers at
//! dispatch; the previous mapping is released when the renaming instruction
//! commits. Allocation always picks the lowest-numbered free register so
//! that live registers cluster into the low banks, which is what lets unused
//! banks be switched off (§1, §5.2.3).
//!
//! Hot-path note: the free list is a bitset scanned with `trailing_zeros`
//! (lowest-free in O(words)), and occupancy / powered-bank counts are
//! maintained incrementally so the per-cycle statistics collection is O(1)
//! instead of O(registers). The original scans are retained as `naive_*`
//! methods under `cfg(any(test, feature = "slow-reference"))` for
//! differential testing.

use crate::config::RegFileConfig;
use sdiq_isa::{ArchReg, RegClass, NUM_ARCH_INT_REGS};
use serde::{Deserialize, Serialize};

/// A physical register: class + index within that class's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysReg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class's physical register file.
    pub index: usize,
}

/// Rename table + free list + physical register state for one class.
#[derive(Debug, Clone)]
pub struct RenamedRegFile {
    class: RegClass,
    config: RegFileConfig,
    rename_map: Vec<usize>,
    /// Bitset of free physical registers (bit set = free).
    free_words: Vec<u64>,
    free_count: usize,
    allocated: Vec<bool>,
    /// `mapped[p]` — physical register `p` is the current mapping of some
    /// architectural register (O(1) stand-in for `rename_map.contains`).
    mapped: Vec<bool>,
    ready: Vec<bool>,
    /// Allocated (live) register count, maintained incrementally.
    live_count: usize,
    /// Live registers per bank, and the number of banks with at least one.
    bank_occupancy: Vec<u32>,
    banks_nonempty: usize,
    reads: u64,
    writes: u64,
}

impl RenamedRegFile {
    /// Creates a register file for `class`; architectural register `i` is
    /// initially mapped to physical register `i` (ready), the rest are free.
    ///
    /// # Panics
    ///
    /// Panics if the file has fewer physical registers than architectural
    /// registers.
    pub fn new(class: RegClass, config: RegFileConfig) -> Self {
        let arch_count = NUM_ARCH_INT_REGS as usize;
        assert!(
            config.regs_per_class >= arch_count,
            "physical register file must cover the architectural registers"
        );
        let words = config.regs_per_class.div_ceil(64);
        let mut free_words = vec![0u64; words];
        for i in arch_count..config.regs_per_class {
            free_words[i / 64] |= 1u64 << (i % 64);
        }
        let mut allocated = vec![false; config.regs_per_class];
        let mut mapped = vec![false; config.regs_per_class];
        let mut ready = vec![false; config.regs_per_class];
        for slot in allocated.iter_mut().take(arch_count) {
            *slot = true;
        }
        for slot in mapped.iter_mut().take(arch_count) {
            *slot = true;
        }
        for slot in ready.iter_mut().take(arch_count) {
            *slot = true;
        }
        let mut bank_occupancy = vec![0u32; config.banks()];
        let mut banks_nonempty = 0;
        for reg in 0..arch_count {
            let bank = reg / config.bank_size;
            bank_occupancy[bank] += 1;
            if bank_occupancy[bank] == 1 {
                banks_nonempty += 1;
            }
        }
        RenamedRegFile {
            class,
            config,
            rename_map: (0..arch_count).collect(),
            free_words,
            free_count: config.regs_per_class - arch_count,
            allocated,
            mapped,
            ready,
            live_count: arch_count,
            bank_occupancy,
            banks_nonempty,
            reads: 0,
            writes: 0,
        }
    }

    /// The register class this file holds.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Current mapping of an architectural source register.
    ///
    /// # Panics
    ///
    /// Panics if `arch` belongs to a different class.
    pub fn rename_source(&self, arch: ArchReg) -> PhysReg {
        assert_eq!(arch.class(), self.class);
        PhysReg {
            class: self.class,
            index: self.rename_map[arch.index() as usize],
        }
    }

    /// `true` if a physical register can be allocated right now.
    pub fn has_free(&self) -> bool {
        self.free_count > 0
    }

    /// Lowest free physical register index, if any.
    fn lowest_free(&self) -> Option<usize> {
        for (word_index, &word) in self.free_words.iter().enumerate() {
            if word != 0 {
                return Some(word_index * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    fn mark_allocated(&mut self, index: usize) {
        self.free_words[index / 64] &= !(1u64 << (index % 64));
        self.free_count -= 1;
        self.allocated[index] = true;
        self.live_count += 1;
        let bank = index / self.config.bank_size;
        self.bank_occupancy[bank] += 1;
        if self.bank_occupancy[bank] == 1 {
            self.banks_nonempty += 1;
        }
    }

    fn mark_free(&mut self, index: usize) {
        self.free_words[index / 64] |= 1u64 << (index % 64);
        self.free_count += 1;
        self.allocated[index] = false;
        self.live_count -= 1;
        let bank = index / self.config.bank_size;
        self.bank_occupancy[bank] -= 1;
        if self.bank_occupancy[bank] == 0 {
            self.banks_nonempty -= 1;
        }
    }

    /// Allocates a new physical register for a write to `arch`, returning the
    /// new mapping and the previous one (to be freed when the instruction
    /// commits). Returns `None` when the free list is empty.
    ///
    /// # Panics
    ///
    /// Panics if `arch` belongs to a different class.
    pub fn allocate_dest(&mut self, arch: ArchReg) -> Option<(PhysReg, PhysReg)> {
        assert_eq!(arch.class(), self.class);
        let (new_index, old_index) = self.allocate_dest_index(arch.index() as usize)?;
        Some((
            PhysReg {
                class: self.class,
                index: new_index,
            },
            PhysReg {
                class: self.class,
                index: old_index,
            },
        ))
    }

    /// Index-only variant of [`RenamedRegFile::allocate_dest`] for the
    /// compiled backend's hot path: the caller tracks register classes
    /// itself, so no [`ArchReg`] / [`PhysReg`] wrapping or class checks.
    /// Returns `(new, previous)` physical indices.
    #[inline]
    pub fn allocate_dest_index(&mut self, arch_index: usize) -> Option<(usize, usize)> {
        let new_index = self.lowest_free()?;
        self.mark_allocated(new_index);
        self.ready[new_index] = false;
        let old_index = self.rename_map[arch_index];
        self.rename_map[arch_index] = new_index;
        self.mapped[old_index] = false;
        self.mapped[new_index] = true;
        Some((new_index, old_index))
    }

    /// Index-only variant of [`RenamedRegFile::rename_source`].
    #[inline]
    pub fn rename_source_index(&self, arch_index: usize) -> usize {
        self.rename_map[arch_index]
    }

    /// Index-only variant of [`RenamedRegFile::is_ready`].
    #[inline]
    pub fn is_ready_index(&self, index: usize) -> bool {
        self.ready[index]
    }

    /// Index-only variant of [`RenamedRegFile::write_value`] that skips the
    /// write-port counter — the compiled backend bakes port totals at
    /// plan-build time and never reads [`RenamedRegFile::port_stats`].
    #[inline]
    pub fn write_value_index(&mut self, index: usize) {
        self.ready[index] = true;
    }

    /// Index-only variant of [`RenamedRegFile::release`].
    #[inline]
    pub fn release_index(&mut self, index: usize) {
        if self.mapped[index] {
            return;
        }
        if self.allocated[index] {
            self.ready[index] = false;
            self.mark_free(index);
        }
    }

    /// Marks a physical register's value as produced (writeback) and counts
    /// the write port activity.
    pub fn write_value(&mut self, reg: PhysReg) {
        debug_assert_eq!(reg.class, self.class);
        self.ready[reg.index] = true;
        self.writes += 1;
    }

    /// Counts a read-port access (operand read at issue).
    pub fn read_value(&mut self, reg: PhysReg) {
        debug_assert_eq!(reg.class, self.class);
        self.reads += 1;
    }

    /// `true` once the value of `reg` has been produced.
    pub fn is_ready(&self, reg: PhysReg) -> bool {
        debug_assert_eq!(reg.class, self.class);
        self.ready[reg.index]
    }

    /// Releases a physical register (the *previous* mapping of a committed
    /// instruction's destination).
    pub fn release(&mut self, reg: PhysReg) {
        debug_assert_eq!(reg.class, self.class);
        // Never release a register that is currently mapped (can happen only
        // through misuse; guard to keep the invariant).
        self.release_index(reg.index);
    }

    /// Number of currently allocated (live) physical registers. O(1).
    pub fn occupancy(&self) -> usize {
        self.live_count
    }

    /// Number of banks holding at least one allocated register. O(1).
    pub fn banks_on(&self) -> usize {
        self.banks_nonempty
    }

    /// Total banks in the file.
    pub fn total_banks(&self) -> usize {
        self.config.banks()
    }

    /// (read-port accesses, write-port accesses) so far.
    pub fn port_stats(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

/// O(registers) reference implementations of the incrementally maintained
/// counters, for differential testing.
#[cfg(any(test, feature = "slow-reference"))]
impl RenamedRegFile {
    /// Reference recomputation of [`RenamedRegFile::occupancy`].
    pub fn naive_occupancy(&self) -> usize {
        self.allocated.iter().filter(|&&a| a).count()
    }

    /// Reference recomputation of [`RenamedRegFile::banks_on`].
    pub fn naive_banks_on(&self) -> usize {
        let bank_size = self.config.bank_size;
        let banks = self.config.banks();
        (0..banks)
            .filter(|b| {
                let lo = b * bank_size;
                let hi = ((b + 1) * bank_size).min(self.config.regs_per_class);
                self.allocated[lo..hi].iter().any(|&a| a)
            })
            .count()
    }

    /// Asserts every incremental counter equals its naive recomputation.
    pub fn assert_consistent(&self) {
        assert_eq!(self.occupancy(), self.naive_occupancy(), "occupancy");
        assert_eq!(self.banks_on(), self.naive_banks_on(), "banks_on");
        let free_bits: usize = self
            .free_words
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        assert_eq!(self.free_count, free_bits, "free_count");
        assert_eq!(
            self.free_count + self.live_count,
            self.config.regs_per_class,
            "free/live partition"
        );
        for (index, &is_mapped) in self.mapped.iter().enumerate() {
            assert_eq!(
                is_mapped,
                self.rename_map.contains(&index),
                "mapped[{index}]"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::reg::{fp_reg, int_reg};

    fn int_file() -> RenamedRegFile {
        RenamedRegFile::new(
            RegClass::Int,
            RegFileConfig {
                regs_per_class: 112,
                bank_size: 8,
            },
        )
    }

    #[test]
    fn initial_state_maps_arch_to_identity() {
        let rf = int_file();
        for i in 0..32u8 {
            let p = rf.rename_source(int_reg(i));
            assert_eq!(p.index, i as usize);
            assert!(rf.is_ready(p));
        }
        assert_eq!(rf.occupancy(), 32);
        // 32 live registers in banks of 8 → 4 banks on out of 14.
        assert_eq!(rf.banks_on(), 4);
        assert_eq!(rf.total_banks(), 14);
        rf.assert_consistent();
    }

    #[test]
    fn allocation_renames_and_marks_not_ready() {
        let mut rf = int_file();
        let (new, old) = rf.allocate_dest(int_reg(5)).unwrap();
        assert_eq!(old.index, 5);
        assert_eq!(new.index, 32, "lowest free register is picked");
        assert!(!rf.is_ready(new));
        assert_eq!(rf.rename_source(int_reg(5)), new);
        rf.write_value(new);
        assert!(rf.is_ready(new));
        assert_eq!(rf.port_stats(), (0, 1));
        rf.assert_consistent();
    }

    #[test]
    fn release_returns_register_to_free_list() {
        let mut rf = int_file();
        let before = rf.occupancy();
        let (_, old) = rf.allocate_dest(int_reg(3)).unwrap();
        assert_eq!(rf.occupancy(), before + 1);
        rf.release(old);
        assert_eq!(rf.occupancy(), before);
        // The released register (index 3) is reused before higher indices.
        let (new, _) = rf.allocate_dest(int_reg(4)).unwrap();
        assert_eq!(new.index, 3);
        rf.assert_consistent();
    }

    #[test]
    fn release_of_still_mapped_register_is_ignored() {
        let mut rf = int_file();
        let mapped = rf.rename_source(int_reg(7));
        rf.release(mapped);
        // Still allocated because it is the live mapping of r7.
        assert_eq!(rf.occupancy(), 32);
        assert_eq!(rf.rename_source(int_reg(7)), mapped);
        rf.assert_consistent();
    }

    #[test]
    fn exhaustion_returns_none_and_recovers() {
        let mut rf = int_file();
        let mut olds = Vec::new();
        // 112 - 32 = 80 free registers.
        for k in 0..80 {
            let (_, old) = rf
                .allocate_dest(int_reg((k % 32) as u8))
                .expect("still free");
            olds.push(old);
        }
        assert!(!rf.has_free());
        assert!(rf.allocate_dest(int_reg(0)).is_none());
        rf.assert_consistent();
        // Committing the instructions releases their previous mappings and
        // replenishes the free list (still-mapped registers are skipped by
        // the guard in `release`).
        for old in olds {
            rf.release(old);
        }
        assert!(rf.has_free());
        assert!(rf.allocate_dest(int_reg(0)).is_some());
        rf.assert_consistent();
    }

    #[test]
    fn banks_grow_with_occupancy() {
        let mut rf = int_file();
        let initial = rf.banks_on();
        for k in 0..9 {
            rf.allocate_dest(int_reg(k)).unwrap();
        }
        assert!(rf.banks_on() > initial);
        rf.assert_consistent();
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn class_mismatch_panics() {
        let rf = int_file();
        let _ = rf.rename_source(fp_reg(0));
    }
}

/// Differential property tests: random allocate / write / release sequences
/// asserting the incremental free-list / occupancy / bank state always
/// equals the naive recomputation.
#[cfg(test)]
mod differential_tests {
    use super::*;
    use proptest::prelude::*;
    use sdiq_isa::reg::int_reg;

    #[derive(Debug, Clone)]
    enum Step {
        /// Allocate a destination for architectural register `a % 32`.
        Allocate(usize),
        /// Release the k-th outstanding previous-mapping.
        ReleaseNth(usize),
        /// Write back the k-th live register.
        WriteNth(usize),
    }

    fn arb_step() -> impl Strategy<Value = Step> {
        prop_oneof![
            (0usize..32usize).prop_map(Step::Allocate),
            (0usize..128usize).prop_map(Step::ReleaseNth),
            (0usize..128usize).prop_map(Step::WriteNth),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn incremental_state_equals_naive_recomputation(
            steps in prop::collection::vec(arb_step(), 1..200),
        ) {
            let mut rf = RenamedRegFile::new(
                RegClass::Int,
                RegFileConfig {
                    regs_per_class: 48,
                    bank_size: 8,
                },
            );
            let mut outstanding: Vec<PhysReg> = Vec::new();
            let mut live: Vec<PhysReg> = Vec::new();
            for step in &steps {
                match step {
                    Step::Allocate(a) => {
                        if let Some((new, old)) = rf.allocate_dest(int_reg((*a % 32) as u8)) {
                            outstanding.push(old);
                            live.push(new);
                        } else {
                            prop_assert!(!rf.has_free());
                        }
                    }
                    Step::ReleaseNth(k) => {
                        if outstanding.is_empty() {
                            continue;
                        }
                        let reg = outstanding.swap_remove(k % outstanding.len());
                        rf.release(reg);
                    }
                    Step::WriteNth(k) => {
                        if live.is_empty() {
                            continue;
                        }
                        let reg = live[k % live.len()];
                        rf.write_value(reg);
                        prop_assert!(rf.is_ready(reg));
                    }
                }
                rf.assert_consistent();
            }
        }
    }
}
