//! Issue-queue resizing policies.
//!
//! Three ways of controlling how many instructions may be resident:
//!
//! * [`ResizePolicy::Fixed`] — the unmanaged baseline: the full 80-entry
//!   queue is always available.
//! * [`ResizePolicy::SoftwareHint`] — the paper's technique: compiler hints
//!   (special NOOPs or instruction tags) set `new_head` / `max_new_range`.
//! * [`ResizePolicy::Adaptive`] — a reimplementation of the hardware
//!   comparator the paper evaluates against (Abella & González's IqRob
//!   adaptive issue queue + ROB, built on Folegnani & González's
//!   youngest-portion heuristic): at the end of each measurement interval
//!   the usable queue shrinks by one bank if the youngest bank contributed
//!   almost nothing to issue, and it is periodically expanded to probe for
//!   lost performance. The reaction lag of this feedback loop on phase
//!   changes is what costs it IPC relative to the software approach (§1,
//!   §5.2).

use serde::{Deserialize, Serialize};

/// Parameters of the adaptive (Abella-style) controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Length of a measurement interval in cycles.
    pub interval_cycles: u64,
    /// Resize granularity in entries (one bank).
    pub bank_entries: usize,
    /// Minimum usable entries.
    pub min_entries: usize,
    /// The queue shrinks by one bank when the fraction of issued
    /// instructions coming from the youngest bank over an interval is below
    /// this threshold (Folegnani & González's "contribution of the youngest
    /// portion to IPC").
    pub youngest_contribution_threshold: f64,
    /// Every this many intervals, the queue grows by one bank to probe
    /// whether the extra entries would contribute again.
    pub expand_period_intervals: u64,
    /// Also limit the reorder buffer to `rob_ratio ×` the issue-queue limit
    /// (the IqRob technique resizes both structures together).
    pub rob_ratio: f64,
}

impl AdaptiveConfig {
    /// Parameters tuned for the 80-entry, 10-bank queue of Table 1 — the
    /// `IqRob64` configuration the paper compares against.
    pub fn iqrob64() -> Self {
        AdaptiveConfig {
            interval_cycles: 1000,
            bank_entries: 8,
            min_entries: 16,
            youngest_contribution_threshold: 0.05,
            expand_period_intervals: 6,
            rob_ratio: 1.6,
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::iqrob64()
    }
}

/// The resizing policy a simulation runs with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResizePolicy {
    /// Full queue, never resized (baseline and `nonEmpty` runs).
    Fixed,
    /// Compiler-directed resizing via `new_head` / `max_new_range`.
    SoftwareHint,
    /// Hardware adaptive resizing (Abella & González comparator).
    Adaptive(AdaptiveConfig),
}

impl ResizePolicy {
    /// `true` if compiler hints should be honoured at dispatch.
    pub fn uses_hints(&self) -> bool {
        matches!(self, ResizePolicy::SoftwareHint)
    }

    /// `true` if the adaptive controller should run.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, ResizePolicy::Adaptive(_))
    }
}

/// Decision produced by the adaptive controller at an interval boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveDecision {
    /// New usable issue-queue entries.
    pub iq_limit: usize,
    /// New usable reorder-buffer entries.
    pub rob_limit: usize,
}

/// Per-cycle observation fed to the adaptive controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveObservation {
    /// Instructions issued this cycle.
    pub issued: u32,
    /// Of those, instructions issued from the youngest bank-sized portion of
    /// the queue (closest to the tail).
    pub issued_from_youngest_bank: u32,
}

/// Runtime state of the adaptive controller.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    capacity: usize,
    rob_capacity: usize,
    limit: usize,
    interval_start: u64,
    issued_in_interval: u64,
    issued_youngest_in_interval: u64,
    intervals_since_expand: u64,
    resizes: u64,
}

impl AdaptiveController {
    /// Creates a controller for a queue of `capacity` entries and a ROB of
    /// `rob_capacity` entries, starting with the full queue usable.
    pub fn new(config: AdaptiveConfig, capacity: usize, rob_capacity: usize) -> Self {
        AdaptiveController {
            config,
            capacity,
            rob_capacity,
            limit: capacity,
            interval_start: 0,
            issued_in_interval: 0,
            issued_youngest_in_interval: 0,
            intervals_since_expand: 0,
            resizes: 0,
        }
    }

    /// Current usable issue-queue entries.
    pub fn iq_limit(&self) -> usize {
        self.limit
    }

    /// Current usable reorder-buffer entries.
    ///
    /// The IqRob coupling never runs the ROB below `min_entries ×
    /// rob_ratio`: the issue-queue limit itself never drops below
    /// `min_entries`, so a floor of `bank_entries` (which is smaller) would
    /// let a machine whose *capacity* is below `min_entries` — e.g. an
    /// `iq=8` sensitivity sweep — clamp the ROB tighter than the coupling
    /// implies.
    pub fn rob_limit(&self) -> usize {
        let floor = ((self.config.min_entries as f64) * self.config.rob_ratio).round() as usize;
        (((self.limit as f64) * self.config.rob_ratio).round() as usize)
            .clamp(floor.min(self.rob_capacity), self.rob_capacity)
    }

    /// Number of resize decisions taken so far.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Feeds one cycle of observation into the controller and returns a new
    /// decision at interval boundaries.
    pub fn on_cycle(
        &mut self,
        cycle: u64,
        observation: AdaptiveObservation,
    ) -> Option<AdaptiveDecision> {
        self.issued_in_interval += u64::from(observation.issued);
        self.issued_youngest_in_interval += u64::from(observation.issued_from_youngest_bank);
        if cycle < self.interval_start + self.config.interval_cycles {
            return None;
        }

        // Interval boundary: decide.
        let old_limit = self.limit;
        self.intervals_since_expand += 1;
        let probe_due = self.intervals_since_expand >= self.config.expand_period_intervals;
        // The probe is *taken* only when it actually grows the queue. At
        // full capacity there is nothing to probe: consuming the interval
        // anyway would skip the shrink check below and delay the
        // Folegnani-style feedback by a whole interval. (The expand clock
        // keeps running while saturated, so the first boundary after a
        // shrink re-probes — the probe is overdue by then.)
        let probed = probe_due && self.limit < self.capacity;
        if probed {
            // Periodic probing expansion.
            self.limit = (self.limit + self.config.bank_entries).min(self.capacity);
            self.intervals_since_expand = 0;
        } else if self.issued_in_interval > 0 {
            let youngest_fraction =
                self.issued_youngest_in_interval as f64 / self.issued_in_interval as f64;
            if youngest_fraction < self.config.youngest_contribution_threshold
                && self.limit > self.config.min_entries
            {
                self.limit = (self.limit - self.config.bank_entries).max(self.config.min_entries);
            }
        }
        if self.limit != old_limit {
            self.resizes += 1;
        }

        self.interval_start = cycle;
        self.issued_in_interval = 0;
        self.issued_youngest_in_interval = 0;
        Some(AdaptiveDecision {
            iq_limit: self.limit,
            rob_limit: self.rob_limit(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdaptiveController {
        AdaptiveController::new(AdaptiveConfig::iqrob64(), 80, 128)
    }

    /// Drives the controller through exactly one interval boundary, feeding a
    /// constant per-cycle observation, and returns the boundary decision.
    /// `cursor` tracks the continuous cycle count across calls.
    fn run_interval(
        c: &mut AdaptiveController,
        cursor: &mut u64,
        issued: u32,
        youngest: u32,
    ) -> AdaptiveDecision {
        loop {
            let d = c.on_cycle(
                *cursor,
                AdaptiveObservation {
                    issued,
                    issued_from_youngest_bank: youngest,
                },
            );
            *cursor += 1;
            if let Some(decision) = d {
                return decision;
            }
        }
    }

    #[test]
    fn starts_with_full_queue() {
        let c = controller();
        assert_eq!(c.iq_limit(), 80);
        assert_eq!(c.rob_limit(), 128);
    }

    #[test]
    fn shrinks_when_youngest_bank_contributes_nothing() {
        let mut c = controller();
        let mut cursor = 0;
        let d = run_interval(&mut c, &mut cursor, 4, 0);
        assert_eq!(d.iq_limit, 72);
        assert!(d.rob_limit < 128);
        assert_eq!(c.resizes(), 1);
    }

    #[test]
    fn holds_size_when_youngest_bank_contributes() {
        let mut c = controller();
        let mut cursor = 0;
        // 25% of issues come from the youngest bank → no shrink.
        let d = run_interval(&mut c, &mut cursor, 4, 1);
        assert_eq!(d.iq_limit, 80);
    }

    #[test]
    fn periodic_probing_grows_the_queue_back() {
        let mut c = controller();
        let mut cursor = 0;
        // Shrink for a few intervals...
        for _ in 0..3 {
            let _ = run_interval(&mut c, &mut cursor, 4, 0);
        }
        assert!(c.iq_limit() < 80);
        // ...then keep going: every `expand_period_intervals`-th interval
        // grows the queue by a bank even though the workload has not changed.
        let mut grew = false;
        let mut previous = c.iq_limit();
        for _ in 0..AdaptiveConfig::iqrob64().expand_period_intervals + 2 {
            let d = run_interval(&mut c, &mut cursor, 4, 0);
            if d.iq_limit > previous {
                grew = true;
            }
            previous = d.iq_limit;
        }
        assert!(grew, "periodic expansion should have probed a larger queue");
    }

    #[test]
    fn never_shrinks_below_minimum() {
        let mut c = controller();
        let mut cursor = 0;
        for _ in 0..40 {
            let _ = run_interval(&mut c, &mut cursor, 2, 0);
        }
        assert!(c.iq_limit() >= AdaptiveConfig::iqrob64().min_entries);
        assert!(c.rob_limit() >= AdaptiveConfig::iqrob64().bank_entries);
    }

    #[test]
    fn adaptation_takes_a_full_interval() {
        // The controller cannot react faster than its interval — the lag the
        // paper's software approach avoids.
        let mut c = controller();
        for cycle in 0..500u64 {
            assert!(c
                .on_cycle(
                    cycle,
                    AdaptiveObservation {
                        issued: 4,
                        issued_from_youngest_bank: 0
                    }
                )
                .is_none());
        }
        assert_eq!(c.iq_limit(), 80);
    }

    #[test]
    fn saturated_at_capacity_probe_does_not_swallow_the_shrink_check() {
        // Regression: the periodic probe used to "fire" (reset its clock and
        // skip the shrink check) even when the queue was already at full
        // capacity and the expansion was a no-op, so a queue that became
        // useless exactly on the probe interval shrank one interval late.
        let mut c = controller();
        let mut cursor = 0;
        // Five intervals where the youngest bank contributes (no shrink, no
        // probe yet): the expand clock reaches the probe period.
        for _ in 0..AdaptiveConfig::iqrob64().expand_period_intervals - 1 {
            let d = run_interval(&mut c, &mut cursor, 4, 1);
            assert_eq!(d.iq_limit, 80);
        }
        // Probe interval, still at capacity, youngest bank suddenly useless:
        // the no-op probe must not consume the interval — the shrink check
        // runs and the queue drops a bank *now*, not next interval.
        let d = run_interval(&mut c, &mut cursor, 4, 0);
        assert_eq!(
            d.iq_limit, 72,
            "shrink must not be delayed by a no-op probe"
        );
        assert_eq!(c.resizes(), 1);
    }

    #[test]
    fn probe_clock_keeps_running_while_saturated() {
        // While the queue sits at capacity the probe cannot take; once a
        // shrink happens the (overdue) probe fires at the next boundary.
        let mut c = controller();
        let mut cursor = 0;
        for _ in 0..2 * AdaptiveConfig::iqrob64().expand_period_intervals {
            let d = run_interval(&mut c, &mut cursor, 4, 1);
            assert_eq!(d.iq_limit, 80, "contributing youngest bank holds size");
        }
        let d = run_interval(&mut c, &mut cursor, 4, 0);
        assert_eq!(d.iq_limit, 72);
        let d = run_interval(&mut c, &mut cursor, 4, 0);
        assert_eq!(d.iq_limit, 80, "overdue probe fires right after the shrink");
        assert_eq!(c.resizes(), 2);
    }

    #[test]
    fn rob_floor_follows_min_entries_not_bank_entries() {
        // An adaptive run on a machine whose whole queue is smaller than
        // `min_entries` (an `iq=8` sensitivity sweep): the raw coupling
        // would give round(8 × 1.6) = 13, but the IqRob floor is
        // min_entries × rob_ratio = round(16 × 1.6) = 26 — the old
        // `bank_entries` floor (8) let the tighter value through.
        let c = AdaptiveController::new(AdaptiveConfig::iqrob64(), 8, 128);
        assert_eq!(c.iq_limit(), 8);
        assert_eq!(c.rob_limit(), 26);
    }

    #[test]
    fn rob_floor_at_the_min_entries_boundary() {
        // Shrink the standard machine all the way to `min_entries`: the ROB
        // sits exactly on the coupled floor and never below it.
        let mut c = controller();
        let mut cursor = 0;
        for _ in 0..40 {
            let _ = run_interval(&mut c, &mut cursor, 2, 0);
        }
        let config = AdaptiveConfig::iqrob64();
        let floor = ((config.min_entries as f64) * config.rob_ratio).round() as usize;
        assert_eq!(floor, 26);
        assert!(
            c.rob_limit() >= floor,
            "ROB never below min_entries × ratio"
        );
        if c.iq_limit() == config.min_entries {
            assert_eq!(c.rob_limit(), floor);
        }
    }

    #[test]
    fn rob_floor_is_capped_by_the_rob_capacity() {
        // A tiny ROB: the floor cannot exceed what the machine has.
        let c = AdaptiveController::new(AdaptiveConfig::iqrob64(), 8, 20);
        assert_eq!(c.rob_limit(), 20);
    }

    #[test]
    fn idle_intervals_do_not_shrink_the_queue() {
        let mut c = controller();
        let mut cursor = 0;
        let d = run_interval(&mut c, &mut cursor, 0, 0);
        // Nothing issued → no evidence the youngest bank is useless.
        assert_eq!(d.iq_limit, 80);
    }

    /// Naive reference reimplementation of the adaptive controller: plain
    /// interval accumulation and the Folegnani/Abella decision rule, written
    /// for obviousness rather than for the simulator hot path. The
    /// differential property below pins `AdaptiveController` to it.
    struct ReferenceModel {
        config: AdaptiveConfig,
        capacity: usize,
        rob_capacity: usize,
        limit: usize,
        interval_start: u64,
        issued: u64,
        youngest: u64,
        since_expand: u64,
    }

    impl ReferenceModel {
        fn new(config: AdaptiveConfig, capacity: usize, rob_capacity: usize) -> Self {
            ReferenceModel {
                config,
                capacity,
                rob_capacity,
                limit: capacity,
                interval_start: 0,
                issued: 0,
                youngest: 0,
                since_expand: 0,
            }
        }

        fn rob_limit(&self) -> usize {
            let floor = ((self.config.min_entries as f64) * self.config.rob_ratio).round() as usize;
            (((self.limit as f64) * self.config.rob_ratio).round() as usize)
                .clamp(floor.min(self.rob_capacity), self.rob_capacity)
        }

        fn on_cycle(&mut self, cycle: u64, obs: AdaptiveObservation) -> Option<AdaptiveDecision> {
            self.issued += u64::from(obs.issued);
            self.youngest += u64::from(obs.issued_from_youngest_bank);
            if cycle < self.interval_start + self.config.interval_cycles {
                return None;
            }
            self.since_expand += 1;
            if self.since_expand >= self.config.expand_period_intervals
                && self.limit < self.capacity
            {
                self.limit = (self.limit + self.config.bank_entries).min(self.capacity);
                self.since_expand = 0;
            } else if self.issued > 0
                && (self.youngest as f64 / self.issued as f64)
                    < self.config.youngest_contribution_threshold
                && self.limit > self.config.min_entries
            {
                self.limit = (self.limit - self.config.bank_entries).max(self.config.min_entries);
            }
            self.interval_start = cycle;
            self.issued = 0;
            self.youngest = 0;
            Some(AdaptiveDecision {
                iq_limit: self.limit,
                rob_limit: self.rob_limit(),
            })
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Random `(issued, issued_from_youngest)` cycle streams over
            /// random bank-aligned geometries: the controller's limits stay
            /// within `[min_entries, capacity]`, every decision moves by at
            /// most exactly one bank, `resizes` counts every transition,
            /// the ROB limit respects its coupled floor and the machine
            /// capacity — and the whole decision sequence is identical to
            /// the naive reference model's.
            #[test]
            fn controller_matches_reference_and_keeps_invariants(
                cycles in prop::collection::vec((0u32..9u32, 0u32..9u32), 1..600),
                banks_above_min in 0usize..9usize,
                interval in 1u64..40u64,
                period in 1u64..8u64,
                threshold_millis in 0u64..900u64,
                rob_capacity in 16usize..257usize,
            ) {
                let config = AdaptiveConfig {
                    interval_cycles: interval,
                    expand_period_intervals: period,
                    youngest_contribution_threshold: threshold_millis as f64 / 1000.0,
                    ..AdaptiveConfig::iqrob64()
                };
                // Bank-aligned capacity so resizes are always whole banks.
                let capacity = config.min_entries + banks_above_min * config.bank_entries;
                let mut controller = AdaptiveController::new(config, capacity, rob_capacity);
                let mut reference = ReferenceModel::new(config, capacity, rob_capacity);
                let rob_floor = ((config.min_entries as f64) * config.rob_ratio).round() as usize;

                let mut previous_limit = controller.iq_limit();
                let mut transitions = 0u64;
                for (cycle, &(issued, youngest)) in cycles.iter().enumerate() {
                    let observation = AdaptiveObservation {
                        issued,
                        issued_from_youngest_bank: youngest.min(issued),
                    };
                    let decision = controller.on_cycle(cycle as u64, observation);
                    let expected = reference.on_cycle(cycle as u64, observation);
                    prop_assert!(
                        decision == expected,
                        "differential divergence at cycle {}: {:?} vs reference {:?}",
                        cycle,
                        decision,
                        expected
                    );

                    if let Some(decision) = decision {
                        prop_assert!(decision.iq_limit >= config.min_entries.min(capacity));
                        prop_assert!(decision.iq_limit <= capacity);
                        let moved = decision.iq_limit.abs_diff(previous_limit);
                        prop_assert!(
                            moved == 0 || moved == config.bank_entries,
                            "limit moved {} → {} (bank is {})",
                            previous_limit,
                            decision.iq_limit,
                            config.bank_entries
                        );
                        if moved != 0 {
                            transitions += 1;
                        }
                        previous_limit = decision.iq_limit;

                        prop_assert!(decision.rob_limit <= rob_capacity);
                        prop_assert!(decision.rob_limit >= rob_floor.min(rob_capacity));
                        prop_assert_eq!(decision.rob_limit, controller.rob_limit());
                    }
                }
                prop_assert!(
                    controller.resizes() == transitions,
                    "resizes {} must count every transition ({})",
                    controller.resizes(),
                    transitions
                );
            }
        }
    }

    #[test]
    fn policy_helpers() {
        assert!(ResizePolicy::SoftwareHint.uses_hints());
        assert!(!ResizePolicy::Fixed.uses_hints());
        assert!(ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()).is_adaptive());
        assert!(!ResizePolicy::SoftwareHint.is_adaptive());
    }
}
