//! Issue-queue resizing policies.
//!
//! Three ways of controlling how many instructions may be resident:
//!
//! * [`ResizePolicy::Fixed`] — the unmanaged baseline: the full 80-entry
//!   queue is always available.
//! * [`ResizePolicy::SoftwareHint`] — the paper's technique: compiler hints
//!   (special NOOPs or instruction tags) set `new_head` / `max_new_range`.
//! * [`ResizePolicy::Adaptive`] — a reimplementation of the hardware
//!   comparator the paper evaluates against (Abella & González's IqRob
//!   adaptive issue queue + ROB, built on Folegnani & González's
//!   youngest-portion heuristic): at the end of each measurement interval
//!   the usable queue shrinks by one bank if the youngest bank contributed
//!   almost nothing to issue, and it is periodically expanded to probe for
//!   lost performance. The reaction lag of this feedback loop on phase
//!   changes is what costs it IPC relative to the software approach (§1,
//!   §5.2).

use serde::{Deserialize, Serialize};

/// Parameters of the adaptive (Abella-style) controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Length of a measurement interval in cycles.
    pub interval_cycles: u64,
    /// Resize granularity in entries (one bank).
    pub bank_entries: usize,
    /// Minimum usable entries.
    pub min_entries: usize,
    /// The queue shrinks by one bank when the fraction of issued
    /// instructions coming from the youngest bank over an interval is below
    /// this threshold (Folegnani & González's "contribution of the youngest
    /// portion to IPC").
    pub youngest_contribution_threshold: f64,
    /// Every this many intervals, the queue grows by one bank to probe
    /// whether the extra entries would contribute again.
    pub expand_period_intervals: u64,
    /// Also limit the reorder buffer to `rob_ratio ×` the issue-queue limit
    /// (the IqRob technique resizes both structures together).
    pub rob_ratio: f64,
}

impl AdaptiveConfig {
    /// Parameters tuned for the 80-entry, 10-bank queue of Table 1 — the
    /// `IqRob64` configuration the paper compares against.
    pub fn iqrob64() -> Self {
        AdaptiveConfig {
            interval_cycles: 1000,
            bank_entries: 8,
            min_entries: 16,
            youngest_contribution_threshold: 0.05,
            expand_period_intervals: 6,
            rob_ratio: 1.6,
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::iqrob64()
    }
}

/// The resizing policy a simulation runs with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResizePolicy {
    /// Full queue, never resized (baseline and `nonEmpty` runs).
    Fixed,
    /// Compiler-directed resizing via `new_head` / `max_new_range`.
    SoftwareHint,
    /// Hardware adaptive resizing (Abella & González comparator).
    Adaptive(AdaptiveConfig),
}

impl ResizePolicy {
    /// `true` if compiler hints should be honoured at dispatch.
    pub fn uses_hints(&self) -> bool {
        matches!(self, ResizePolicy::SoftwareHint)
    }

    /// `true` if the adaptive controller should run.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, ResizePolicy::Adaptive(_))
    }
}

/// Decision produced by the adaptive controller at an interval boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveDecision {
    /// New usable issue-queue entries.
    pub iq_limit: usize,
    /// New usable reorder-buffer entries.
    pub rob_limit: usize,
}

/// Per-cycle observation fed to the adaptive controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveObservation {
    /// Instructions issued this cycle.
    pub issued: u32,
    /// Of those, instructions issued from the youngest bank-sized portion of
    /// the queue (closest to the tail).
    pub issued_from_youngest_bank: u32,
}

/// Runtime state of the adaptive controller.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    capacity: usize,
    rob_capacity: usize,
    limit: usize,
    interval_start: u64,
    issued_in_interval: u64,
    issued_youngest_in_interval: u64,
    intervals_since_expand: u64,
    resizes: u64,
}

impl AdaptiveController {
    /// Creates a controller for a queue of `capacity` entries and a ROB of
    /// `rob_capacity` entries, starting with the full queue usable.
    pub fn new(config: AdaptiveConfig, capacity: usize, rob_capacity: usize) -> Self {
        AdaptiveController {
            config,
            capacity,
            rob_capacity,
            limit: capacity,
            interval_start: 0,
            issued_in_interval: 0,
            issued_youngest_in_interval: 0,
            intervals_since_expand: 0,
            resizes: 0,
        }
    }

    /// Current usable issue-queue entries.
    pub fn iq_limit(&self) -> usize {
        self.limit
    }

    /// Current usable reorder-buffer entries.
    pub fn rob_limit(&self) -> usize {
        (((self.limit as f64) * self.config.rob_ratio).round() as usize)
            .clamp(self.config.bank_entries, self.rob_capacity)
    }

    /// Number of resize decisions taken so far.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Feeds one cycle of observation into the controller and returns a new
    /// decision at interval boundaries.
    pub fn on_cycle(
        &mut self,
        cycle: u64,
        observation: AdaptiveObservation,
    ) -> Option<AdaptiveDecision> {
        self.issued_in_interval += u64::from(observation.issued);
        self.issued_youngest_in_interval += u64::from(observation.issued_from_youngest_bank);
        if cycle < self.interval_start + self.config.interval_cycles {
            return None;
        }

        // Interval boundary: decide.
        let old_limit = self.limit;
        self.intervals_since_expand += 1;
        if self.intervals_since_expand >= self.config.expand_period_intervals {
            // Periodic probing expansion.
            self.limit = (self.limit + self.config.bank_entries).min(self.capacity);
            self.intervals_since_expand = 0;
        } else if self.issued_in_interval > 0 {
            let youngest_fraction =
                self.issued_youngest_in_interval as f64 / self.issued_in_interval as f64;
            if youngest_fraction < self.config.youngest_contribution_threshold
                && self.limit > self.config.min_entries
            {
                self.limit = (self.limit - self.config.bank_entries).max(self.config.min_entries);
            }
        }
        if self.limit != old_limit {
            self.resizes += 1;
        }

        self.interval_start = cycle;
        self.issued_in_interval = 0;
        self.issued_youngest_in_interval = 0;
        Some(AdaptiveDecision {
            iq_limit: self.limit,
            rob_limit: self.rob_limit(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdaptiveController {
        AdaptiveController::new(AdaptiveConfig::iqrob64(), 80, 128)
    }

    /// Drives the controller through exactly one interval boundary, feeding a
    /// constant per-cycle observation, and returns the boundary decision.
    /// `cursor` tracks the continuous cycle count across calls.
    fn run_interval(
        c: &mut AdaptiveController,
        cursor: &mut u64,
        issued: u32,
        youngest: u32,
    ) -> AdaptiveDecision {
        loop {
            let d = c.on_cycle(
                *cursor,
                AdaptiveObservation {
                    issued,
                    issued_from_youngest_bank: youngest,
                },
            );
            *cursor += 1;
            if let Some(decision) = d {
                return decision;
            }
        }
    }

    #[test]
    fn starts_with_full_queue() {
        let c = controller();
        assert_eq!(c.iq_limit(), 80);
        assert_eq!(c.rob_limit(), 128);
    }

    #[test]
    fn shrinks_when_youngest_bank_contributes_nothing() {
        let mut c = controller();
        let mut cursor = 0;
        let d = run_interval(&mut c, &mut cursor, 4, 0);
        assert_eq!(d.iq_limit, 72);
        assert!(d.rob_limit < 128);
        assert_eq!(c.resizes(), 1);
    }

    #[test]
    fn holds_size_when_youngest_bank_contributes() {
        let mut c = controller();
        let mut cursor = 0;
        // 25% of issues come from the youngest bank → no shrink.
        let d = run_interval(&mut c, &mut cursor, 4, 1);
        assert_eq!(d.iq_limit, 80);
    }

    #[test]
    fn periodic_probing_grows_the_queue_back() {
        let mut c = controller();
        let mut cursor = 0;
        // Shrink for a few intervals...
        for _ in 0..3 {
            let _ = run_interval(&mut c, &mut cursor, 4, 0);
        }
        assert!(c.iq_limit() < 80);
        // ...then keep going: every `expand_period_intervals`-th interval
        // grows the queue by a bank even though the workload has not changed.
        let mut grew = false;
        let mut previous = c.iq_limit();
        for _ in 0..AdaptiveConfig::iqrob64().expand_period_intervals + 2 {
            let d = run_interval(&mut c, &mut cursor, 4, 0);
            if d.iq_limit > previous {
                grew = true;
            }
            previous = d.iq_limit;
        }
        assert!(grew, "periodic expansion should have probed a larger queue");
    }

    #[test]
    fn never_shrinks_below_minimum() {
        let mut c = controller();
        let mut cursor = 0;
        for _ in 0..40 {
            let _ = run_interval(&mut c, &mut cursor, 2, 0);
        }
        assert!(c.iq_limit() >= AdaptiveConfig::iqrob64().min_entries);
        assert!(c.rob_limit() >= AdaptiveConfig::iqrob64().bank_entries);
    }

    #[test]
    fn adaptation_takes_a_full_interval() {
        // The controller cannot react faster than its interval — the lag the
        // paper's software approach avoids.
        let mut c = controller();
        for cycle in 0..500u64 {
            assert!(c
                .on_cycle(
                    cycle,
                    AdaptiveObservation {
                        issued: 4,
                        issued_from_youngest_bank: 0
                    }
                )
                .is_none());
        }
        assert_eq!(c.iq_limit(), 80);
    }

    #[test]
    fn idle_intervals_do_not_shrink_the_queue() {
        let mut c = controller();
        let mut cursor = 0;
        let d = run_interval(&mut c, &mut cursor, 0, 0);
        // Nothing issued → no evidence the youngest bank is useless.
        assert_eq!(d.iq_limit, 80);
    }

    #[test]
    fn policy_helpers() {
        assert!(ResizePolicy::SoftwareHint.uses_hints());
        assert!(!ResizePolicy::Fixed.uses_hints());
        assert!(ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()).is_adaptive());
        assert!(!ResizePolicy::SoftwareHint.is_adaptive());
    }
}
