//! Activity statistics collected by the timing simulator.
//!
//! These raw counters are the interface between the simulator and the power
//! model: `sdiq-power` turns them into dynamic/static energy following the
//! Wattch methodology (energy = Σ activity × per-event energy; leakage ∝
//! powered-on banks × cycles).

use serde::{Deserialize, Serialize};

/// Raw activity counters of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityStats {
    // --- high-level outcome -------------------------------------------------
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (retired) instructions, excluding stripped special NOOPs.
    pub committed: u64,
    /// Committed special NOOPs (they are stripped before dispatch but do
    /// occupy fetch/decode slots).
    pub committed_hints: u64,
    /// Instructions dispatched into the issue queue.
    pub dispatched: u64,
    /// Instructions issued from the queue to functional units.
    pub issued: u64,

    // --- front end -----------------------------------------------------------
    /// Conditional branches fetched.
    pub branches: u64,
    /// Conditional branches whose direction was mispredicted.
    pub mispredicted_branches: u64,
    /// Taken control transfers that missed in the BTB.
    pub btb_misses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// Cycles fetch was stalled waiting for a mispredicted branch to resolve.
    pub fetch_stall_cycles: u64,
    /// Cycles dispatch was blocked by the software/hardware issue-queue limit.
    pub dispatch_limit_stall_cycles: u64,

    // --- memory --------------------------------------------------------------
    /// L1 D-cache accesses.
    pub dcache_accesses: u64,
    /// L1 D-cache misses.
    pub dcache_misses: u64,
    /// L2 misses (from either L1).
    pub l2_misses: u64,

    // --- issue queue ---------------------------------------------------------
    /// Result broadcasts into the issue queue (completing instructions with
    /// a destination register).
    pub wakeup_broadcasts: u64,
    /// Operand comparisons if every entry of the full queue is woken on every
    /// broadcast (the unmanaged baseline the paper normalises against).
    pub wakeup_comparisons_full: u64,
    /// Operand comparisons if only *non-empty* entries are woken
    /// (Folegnani & González's `nonEmpty` scheme).
    pub wakeup_comparisons_nonempty: u64,
    /// Operand comparisons if only non-empty, non-ready operands are woken
    /// (empty and ready operands are gated, as the paper assumes for its
    /// technique).
    pub wakeup_comparisons_gated: u64,
    /// Entries written into the issue queue (dispatches).
    pub iq_writes: u64,
    /// Entries read out of the issue queue (issues).
    pub iq_reads: u64,
    /// Σ over cycles of resident issue-queue entries (occupancy integral).
    pub iq_occupancy_sum: u64,
    /// Σ over cycles of powered-on issue-queue banks.
    pub iq_banks_on_sum: u64,
    /// Total issue-queue banks (constant, for convenience).
    pub iq_total_banks: u64,
    /// Total issue-queue entries (constant, for convenience).
    pub iq_total_entries: u64,

    // --- register file -------------------------------------------------------
    /// Integer register-file read ports exercised.
    pub int_rf_reads: u64,
    /// Integer register-file writes.
    pub int_rf_writes: u64,
    /// FP register-file reads.
    pub fp_rf_reads: u64,
    /// FP register-file writes.
    pub fp_rf_writes: u64,
    /// Σ over cycles of allocated (live) integer physical registers.
    pub int_rf_occupancy_sum: u64,
    /// Σ over cycles of powered-on integer register-file banks.
    pub int_rf_banks_on_sum: u64,
    /// Σ over cycles of allocated FP physical registers.
    pub fp_rf_occupancy_sum: u64,
    /// Σ over cycles of powered-on FP register-file banks.
    pub fp_rf_banks_on_sum: u64,
    /// Total integer register-file banks (constant).
    pub int_rf_total_banks: u64,
    /// Total FP register-file banks (constant).
    pub fp_rf_total_banks: u64,

    // --- window --------------------------------------------------------------
    /// Σ over cycles of occupied reorder-buffer entries.
    pub rob_occupancy_sum: u64,
    /// Cycles dispatch was blocked because the ROB was full.
    pub rob_full_stall_cycles: u64,
    /// Cycles dispatch was blocked because no physical register was free.
    pub rename_stall_cycles: u64,

    // --- technique extensions ------------------------------------------------
    /// Committed instructions carrying the profiled low-energy encoding
    /// (the `lowen-isa` technique). Zero for every technique whose compiler
    /// pass does not run the low-energy re-encoding.
    ///
    /// Deliberately *not* part of the persist codecs' fixed counter block:
    /// it is serialised only for techniques whose registry spec declares
    /// `tracks_low_energy`, so the six paper techniques' saved bytes are
    /// unchanged by its existence.
    pub committed_low_energy: u64,
}

impl ActivityStats {
    /// Instructions per cycle over the committed instructions.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Average resident issue-queue entries per cycle.
    pub fn avg_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Average powered-on issue-queue banks per cycle.
    pub fn avg_iq_banks_on(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_banks_on_sum as f64 / self.cycles as f64
        }
    }

    /// Fraction of issue-queue banks turned off, averaged over cycles.
    pub fn iq_banks_off_fraction(&self) -> f64 {
        if self.iq_total_banks == 0 {
            0.0
        } else {
            1.0 - self.avg_iq_banks_on() / self.iq_total_banks as f64
        }
    }

    /// Average allocated integer physical registers per cycle.
    pub fn avg_int_rf_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.int_rf_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Average powered-on integer register-file banks per cycle.
    pub fn avg_int_rf_banks_on(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.int_rf_banks_on_sum as f64 / self.cycles as f64
        }
    }

    /// Branch direction misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicted_branches as f64 / self.branches as f64
        }
    }

    /// L1 D-cache miss rate.
    pub fn dcache_miss_rate(&self) -> f64 {
        if self.dcache_accesses == 0 {
            0.0
        } else {
            self.dcache_misses as f64 / self.dcache_accesses as f64
        }
    }

    /// Average ROB occupancy per cycle.
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios_handle_zero_cycles() {
        let s = ActivityStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_iq_occupancy(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.dcache_miss_rate(), 0.0);
        assert_eq!(s.iq_banks_off_fraction(), 0.0);
    }

    #[test]
    fn derived_ratios_compute_expected_values() {
        let s = ActivityStats {
            cycles: 100,
            committed: 250,
            iq_occupancy_sum: 4000,
            iq_banks_on_sum: 600,
            iq_total_banks: 10,
            branches: 50,
            mispredicted_branches: 5,
            dcache_accesses: 200,
            dcache_misses: 20,
            int_rf_occupancy_sum: 5000,
            int_rf_banks_on_sum: 900,
            rob_occupancy_sum: 6400,
            ..ActivityStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-9);
        assert!((s.avg_iq_occupancy() - 40.0).abs() < 1e-9);
        assert!((s.avg_iq_banks_on() - 6.0).abs() < 1e-9);
        assert!((s.iq_banks_off_fraction() - 0.4).abs() < 1e-9);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-9);
        assert!((s.dcache_miss_rate() - 0.1).abs() < 1e-9);
        assert!((s.avg_int_rf_occupancy() - 50.0).abs() < 1e-9);
        assert!((s.avg_int_rf_banks_on() - 9.0).abs() < 1e-9);
        assert!((s.avg_rob_occupancy() - 64.0).abs() < 1e-9);
    }
}
