//! Annotation legality and the advertised-window soundness envelope.
//!
//! Legality (`ANN*`): every advertised window lies in `[floor, capacity]`,
//! and the Tagging/NoopInsertion precedence rule — the loop pre-header's
//! value is the *last* hint decoded in its block, so it is the one in force
//! when the loop is entered — holds as a machine-checkable invariant.
//! (`ANN002`, hint placement reachable by decode, is checked structurally
//! in [`crate::structural`] since it is a per-block property.)
//!
//! Soundness (`ENV*`): the paper's claim is that every advertised window is
//! a monotone over-approximation of the region's issue-queue demand — large
//! enough that issuing under it can never lengthen the critical path (the
//! Graham-anomaly envelope of §4). Rather than trusting the compiler pass,
//! the checker *recomputes* the demand of every DAG block and loop from the
//! annotated program (hint NOOPs are transparent to both analyses and tags
//! carry no dataflow) and requires `advertised ≥ min(demand, capacity)`.
//! Adjustments such as the inter-procedural widening only ever raise
//! windows, so the inequality must survive every pass.

use crate::diag::{codes, Diagnostic};
use sdiq_compiler::annotate::Annotations;
use sdiq_compiler::{analyse_block, analyse_loop_body, CompiledProgram, PassConfig};
use sdiq_ir::ProcedureAnalysis;
use sdiq_isa::{BlockRef, Instruction, ProcId, Program};
use std::collections::HashMap;

/// Mirrors the annotation encoder (`annotate::encode_entries`).
fn encode_entries(entries: u32) -> u8 {
    entries.clamp(1, 255) as u8
}

fn block_loc(program: &Program, block_ref: &BlockRef) -> String {
    format!(
        "proc `{}` block b{}",
        program.proc(block_ref.proc).name,
        block_ref.block.0
    )
}

/// `ANN001`: every advertised window lies in `[floor, capacity]`.
pub fn check_window_ranges(
    program: &Program,
    annotations: &Annotations,
    config: &PassConfig,
) -> Vec<Diagnostic> {
    let cap = config.widths.iq_capacity as u32;
    let floor = config.min_advertised_entries.min(cap);
    let mut diags = Vec::new();
    let maps = [
        ("block window", &annotations.block_entries),
        (
            "loop pre-header window",
            &annotations.loop_preheader_entries,
        ),
    ];
    for (what, map) in maps {
        for (block_ref, &value) in map {
            if value < floor || value > cap {
                diags.push(Diagnostic::error(
                    codes::ANN001,
                    block_loc(program, block_ref),
                    format!("{what} advertises {value} entries, outside [{floor}, {cap}]"),
                ));
            }
        }
    }
    diags
}

/// `ANN003`: in every block carrying a loop pre-header window, that value
/// must be the last hint decoded (blocks ending in a library call are
/// exempt — the §4.4 maximum-size hint legitimately takes precedence
/// there).
pub fn check_loop_precedence(program: &Program, annotations: &Annotations) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (block_ref, &value) in &annotations.loop_preheader_entries {
        if annotations.max_before_call.contains(block_ref) {
            continue;
        }
        let block = program.proc(block_ref.proc).block(block_ref.block);
        let expected = encode_entries(value);
        match block.instructions.iter().rev().find_map(|i| i.iq_hint) {
            Some(last) if last == expected => {}
            Some(last) => diags.push(Diagnostic::error(
                codes::ANN003,
                block_loc(program, block_ref),
                format!(
                    "loop pre-header window {expected} is not decoded last (last hint is {last}): the loop would run under the wrong window"
                ),
            )),
            None => diags.push(Diagnostic::error(
                codes::ANN003,
                block_loc(program, block_ref),
                format!("loop pre-header window {expected} was never emitted in this block"),
            )),
        }
    }
    diags
}

/// `ANN004`: every block the low-energy encoding pass marked exists in the
/// program and belongs to an analysed (non-library) procedure. Library
/// routines are never analysed, so a library reference means the pass ran
/// over stale or foreign analysis state.
pub fn check_low_energy_blocks(program: &Program, annotations: &Annotations) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for block_ref in &annotations.low_energy_blocks {
        let Some(proc) = program.procedures.get(block_ref.proc.0) else {
            diags.push(Diagnostic::error(
                codes::ANN004,
                format!("proc #{} block b{}", block_ref.proc.0, block_ref.block.0),
                "low-energy block references a procedure outside the program",
            ));
            continue;
        };
        if proc.blocks.get(block_ref.block.0).is_none() {
            diags.push(Diagnostic::error(
                codes::ANN004,
                format!("proc `{}` block b{}", proc.name, block_ref.block.0),
                "low-energy block references a block outside its procedure",
            ));
        } else if proc.is_library {
            diags.push(Diagnostic::error(
                codes::ANN004,
                block_loc(program, block_ref),
                "low-energy block marks a library routine, which the pass never analyses",
            ));
        }
    }
    diags
}

/// Annotation legality over a compile result (`ANN001` + `ANN003` +
/// `ANN004`).
pub fn verify_annotations(compiled: &CompiledProgram) -> Vec<Diagnostic> {
    let mut diags = check_window_ranges(&compiled.program, &compiled.annotations, &compiled.config);
    diags.extend(check_loop_precedence(
        &compiled.program,
        &compiled.annotations,
    ));
    diags.extend(check_low_energy_blocks(
        &compiled.program,
        &compiled.annotations,
    ));
    diags
}

/// The soundness envelope (`ENV001` + `ENV002`): recompute every region's
/// demand from the annotated program and require the advertised window to
/// cover it.
pub fn verify_envelope(compiled: &CompiledProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cap = compiled.config.widths.iq_capacity as u32;
    let width = compiled.config.widths.pipeline_width;
    let program = &compiled.program;

    // ENV001: DAG blocks. `analyse_block` filters hint NOOPs, so running it
    // over the annotated block recomputes exactly the original demand.
    for block_ref in compiled.block_requirements.keys() {
        let block = program.proc(block_ref.proc).block(block_ref.block);
        let recomputed = analyse_block(&block.instructions, width, &compiled.config.fu_counts);
        let required = recomputed.entries.min(cap);
        match compiled.annotations.block_entries.get(block_ref) {
            Some(&advertised) if advertised >= required => {}
            Some(&advertised) => diags.push(Diagnostic::error(
                codes::ENV001,
                block_loc(program, block_ref),
                format!(
                    "advertised window {advertised} is below the recomputed demand {required}: the over-approximation envelope is violated"
                ),
            )),
            None => diags.push(Diagnostic::error(
                codes::ENV001,
                block_loc(program, block_ref),
                "analysed DAG block has no advertised window",
            )),
        }
    }

    // ENV002: loops. Re-analyse each procedure once (the emitted hints do
    // not add blocks or edges, so the loop forest is unchanged).
    let mut analyses: HashMap<ProcId, ProcedureAnalysis> = HashMap::new();
    for info in &compiled.loop_requirements {
        let proc = program.proc(info.proc);
        let analysis = analyses
            .entry(info.proc)
            .or_insert_with(|| ProcedureAnalysis::analyse(proc));
        let header_ref = BlockRef {
            proc: info.proc,
            block: info.header,
        };
        let Some(loop_idx) = analysis
            .loops
            .loops()
            .iter()
            .position(|l| l.header == info.header)
        else {
            diags.push(Diagnostic::error(
                codes::ENV002,
                block_loc(program, &header_ref),
                "analysed loop no longer exists in the annotated program",
            ));
            continue;
        };
        let mut blocks: Vec<_> = analysis
            .loops
            .exclusive_blocks(loop_idx)
            .into_iter()
            .collect();
        blocks.sort_by_key(|b| analysis.cfg.rpo_index(*b).unwrap_or(usize::MAX));
        let body: Vec<Instruction> = blocks
            .iter()
            .flat_map(|b| proc.block(*b).instructions.iter().cloned())
            .collect();
        let recomputed = analyse_loop_body(&body, cap);
        let required = recomputed.entries.unwrap_or(cap).min(cap);

        // Every advertised window that can be in force when the loop is
        // entered must cover the demand: all out-of-loop pre-headers, or
        // the header-block fallback.
        let natural_loop = &analysis.loops.loops()[loop_idx];
        let mut advertised: Vec<u32> = Vec::new();
        for &pred in analysis.cfg.preds(info.header) {
            if !natural_loop.body.contains(&pred) {
                if let Some(&v) = compiled.annotations.loop_preheader_entries.get(&BlockRef {
                    proc: info.proc,
                    block: pred,
                }) {
                    advertised.push(v);
                }
            }
        }
        if advertised.is_empty() {
            if let Some(&v) = compiled.annotations.block_entries.get(&header_ref) {
                advertised.push(v);
            }
        }
        match advertised.iter().copied().min() {
            Some(min_advertised) if min_advertised >= required => {}
            Some(min_advertised) => diags.push(Diagnostic::error(
                codes::ENV002,
                block_loc(program, &header_ref),
                format!(
                    "loop window {min_advertised} is below the recomputed demand {required}: the over-approximation envelope is violated"
                ),
            )),
            None => diags.push(Diagnostic::error(
                codes::ENV002,
                block_loc(program, &header_ref),
                "loop has no advertised window in any pre-header",
            )),
        }
    }
    diags
}
