//! Structured diagnostics with stable machine-readable codes.
//!
//! Every checker in this crate reports through [`Diagnostic`]. Codes are
//! grouped by subsystem (`CFG*`, `DOM*`, `LOOP*`, `REG*`, `ISA*`, `ANN*`,
//! `ENV*`, `PLAN*`) and are stable across releases: tests and CI scripts
//! match on them, so a code is never renumbered or reused. The full table
//! lives in `EXPERIMENTS.md`.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not a correctness violation (e.g. a register read
    /// that no path provably defines — the executor zero-initialises
    /// registers, so this is advisory).
    Warning,
    /// A violated invariant. `repro lint` exits non-zero on any error.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a stable code, a severity, where, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (see [`codes`]).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable location (`proc \`main\` block b2 inst 3`).
    pub location: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// `true` if any diagnostic in `diags` is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// The stable diagnostic codes (documentation of record: `EXPERIMENTS.md`).
pub mod codes {
    /// Dangling reference: a block successor, branch target, fall-through,
    /// call target or entry points outside the program.
    pub const CFG001: &str = "CFG001";
    /// A control-transfer instruction is followed by a real (non-hint)
    /// instruction in the same block.
    pub const CFG002: &str = "CFG002";
    /// A block neither returns nor has any successor: control falls off
    /// the end of the procedure.
    pub const CFG003: &str = "CFG003";
    /// CFG edge asymmetry: the built CFG's successor/predecessor lists
    /// disagree with the blocks' terminators.
    pub const CFG004: &str = "CFG004";
    /// The dominator tree disagrees with an independent reachability-based
    /// recomputation.
    pub const DOM001: &str = "DOM001";
    /// Loop-forest inconsistency: a loop header that does not dominate a
    /// body block, or a loop with no back edge.
    pub const LOOP001: &str = "LOOP001";
    /// (Warning) a register is read on some path before any definition.
    /// Advisory: the executor zero-initialises the register file, and
    /// procedures legitimately read incoming argument registers.
    pub const REG001: &str = "REG001";
    /// An instruction fails structural validation (operand shape does not
    /// fit its opcode).
    pub const ISA001: &str = "ISA001";
    /// A decoded resize hint advertises zero issue-queue entries — a value
    /// the annotation encoder can never produce.
    pub const ISA002: &str = "ISA002";
    /// An advertised window lies outside `[floor, capacity]`.
    pub const ANN001: &str = "ANN001";
    /// A hint NOOP is placed after a control transfer, where decode never
    /// reaches it.
    pub const ANN002: &str = "ANN002";
    /// Precedence violation: the loop pre-header hint is not the last hint
    /// decoded in its block, so the loop would run under the wrong window.
    pub const ANN003: &str = "ANN003";
    /// A low-energy-encoding mark references a block outside the program
    /// or inside a library routine the pass never analyses.
    pub const ANN004: &str = "ANN004";
    /// A DAG block's advertised window is below its recomputed demand: the
    /// monotone over-approximation (Graham-anomaly envelope) is violated.
    pub const ENV001: &str = "ENV001";
    /// A loop's advertised window is below its recomputed demand.
    pub const ENV002: &str = "ENV002";
    /// Plan record/stream lengths disagree with the trace.
    pub const PLAN001: &str = "PLAN001";
    /// A packed `InstRecord` fails the field round-trip against its source
    /// instruction (swapped or corrupted fields).
    pub const PLAN002: &str = "PLAN002";
    /// The plan's memory-address stream disagrees with the trace.
    pub const PLAN003: &str = "PLAN003";
    /// The plan's I-miss stream disagrees with its own miss flags.
    pub const PLAN004: &str = "PLAN004";
    /// A baked activity-counter identity does not hold.
    pub const PLAN005: &str = "PLAN005";
}
