//! # sdiq-verify — static verification of programs, annotations and plans
//!
//! Every scaling substrate in this repository (shards, the remote fleet,
//! compiled plans) is pinned by *dynamic* bit-identity checks; this crate
//! adds the *static* side: a malformed CFG, an unsound advertised-window
//! annotation or a mis-packed plan record is caught by construction, not
//! only when a differential test happens to execute the broken path.
//!
//! Three layers, reported through [`Diagnostic`]s with stable codes (the
//! full table is in `EXPERIMENTS.md`):
//!
//! 1. **Structural** ([`structural::verify_program`]) — CFG
//!    well-formedness, dominator-tree and loop-forest consistency against
//!    independent recomputations, instruction encoding checks and
//!    def-before-use warnings (`CFG*`, `DOM*`, `LOOP*`, `ISA*`, `REG*`).
//! 2. **Annotations** ([`annotations`]) — advertised-window legality
//!    (`ANN*`) and the paper's soundness claim, verified rather than
//!    trusted: every window is a monotone over-approximation of the
//!    region's recomputed demand (`ENV*`).
//! 3. **Plan lint** ([`plan_lint::lint_plan`]) — a compiled
//!    [`sdiq_sim::ExecPlan`] cross-checked field-by-field against its
//!    source program and trace (`PLAN*`).
//!
//! [`StandardVerifier`] wires layers 1–2 between the compiler's registered
//! passes (see `sdiq_compiler::PassManager`); [`verify_compiled`] and
//! [`lint_plan`] run the full suite over finished artifacts — that is what
//! `ArtifactCache` (once per cached artifact) and the `repro lint`
//! subcommand call.
//!
//! The guarantees are exactly the listed invariants — the verifier does
//! *not* prove the simulator's timing model correct, nor that advertised
//! windows are *tight* (over-approximation is the contract, minimality is
//! not).

pub mod annotations;
pub mod diag;
pub mod pass_verifier;
pub mod plan_lint;
pub mod structural;

pub use annotations::{verify_annotations, verify_envelope};
pub use diag::{codes, has_errors, Diagnostic, Severity};
pub use pass_verifier::StandardVerifier;
pub use plan_lint::lint_plan;
pub use structural::verify_program;

use sdiq_compiler::CompiledProgram;

/// The full static suite over a finished compile: structural verification
/// of the annotated program, annotation legality, and the soundness
/// envelope.
pub fn verify_compiled(compiled: &CompiledProgram) -> Vec<Diagnostic> {
    let mut diags = verify_program(&compiled.program);
    diags.extend(verify_annotations(compiled));
    diags.extend(verify_envelope(compiled));
    diags
}
