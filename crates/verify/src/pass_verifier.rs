//! The [`PassVerifier`] implementation wired between compiler passes.
//!
//! [`StandardVerifier`] dispatches on the pass name registered in
//! [`sdiq_compiler::PassManager::standard`]:
//!
//! * after `analyse-procedures` — full structural verification of the
//!   input program,
//! * after each window-producing pass — advertised-window range legality
//!   over the annotations accumulated so far,
//! * after `low-energy-encode` — every marked block exists and belongs to
//!   an analysed (non-library) procedure,
//! * after `emit` — structural verification of the *output* program plus
//!   the loop-precedence rule over the emitted hints.
//!
//! Only error-severity findings abort the pipeline; warnings (`REG001`)
//! are advisory and never fail a compile.
//!
//! The envelope (`ENV*`) and plan (`PLAN*`) checks need the finished
//! [`CompiledProgram`] / `ExecPlan` and therefore run after the pipeline —
//! see [`crate::verify_compiled`] and [`crate::lint_plan`].

use crate::annotations::{check_loop_precedence, check_low_energy_blocks, check_window_ranges};
use crate::diag::{Diagnostic, Severity};
use crate::structural::verify_program;
use sdiq_compiler::{PassDiagnostic, PassState, PassVerifier};

/// The standard inter-pass verifier. Stateless; one instance can serve any
/// number of compiles.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardVerifier;

impl PassVerifier for StandardVerifier {
    fn verify_after(&self, pass: &str, state: &PassState<'_>) -> Vec<PassDiagnostic> {
        let mut diags: Vec<Diagnostic> = Vec::new();
        match pass {
            "analyse-procedures" => diags.extend(verify_program(state.program)),
            "loop-windows" | "dag-windows" | "call-windows" | "interprocedural-fu" => diags.extend(
                check_window_ranges(state.program, &state.annotations, &state.config),
            ),
            "low-energy-encode" => {
                diags.extend(check_low_energy_blocks(state.program, &state.annotations))
            }
            "emit" => {
                if let Some(output) = &state.output {
                    diags.extend(verify_program(output));
                    diags.extend(check_loop_precedence(output, &state.annotations));
                }
            }
            _ => {}
        }
        diags
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| PassDiagnostic {
                code: d.code.to_string(),
                message: format!("{}: {}", d.location, d.message),
            })
            .collect()
    }
}
