//! Layer 3: the execution-plan lint.
//!
//! [`sdiq_sim::ExecPlan`] packs every static fact of a
//! `(program, trace, config)` cell into flat arrays; the simulator then
//! trusts those arrays completely. This lint cross-checks a built plan
//! against its sources:
//!
//! * stream lengths agree with the trace (`PLAN001`),
//! * every packed [`InstRecord`](sdiq_sim::InstRecord) round-trips against
//!   its source instruction — destination/source registers under the dense
//!   encoding, FU class, latency, hint value, and every flag that is a
//!   pure function of the instruction and trace (`PLAN002`),
//! * the memory-address stream equals the trace's, with the simulator's
//!   default applied (`PLAN003`),
//! * the I-miss address stream is consistent with the miss flags
//!   (`PLAN004`),
//! * the baked activity counters satisfy their defining identities
//!   (`PLAN005`).
//!
//! Front-end bits that depend on predictor or cache *state* (mispredicts,
//! BTB stalls, L1i hit/miss placement) are not recomputed here — they are
//! pinned dynamically by the backend bit-identity tests.

use crate::diag::{codes, Diagnostic};
use sdiq_isa::exec::DATA_BASE;
use sdiq_isa::{Program, Trace};
use sdiq_sim::plan::{dense_arch, flag, ExecPlan, NO_REG};

/// Per-record diagnostics stop after this many findings; corrupted plans
/// tend to fail on every record and a bounded report reads better.
const MAX_RECORD_DIAGS: usize = 25;

/// Cross-checks `plan` against the `program` and `trace` it was built
/// from.
pub fn lint_plan(plan: &ExecPlan, program: &Program, trace: &Trace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let records = plan.records();
    let mem_addrs = plan.mem_addrs();

    if records.len() != trace.len() || mem_addrs.len() != trace.len() {
        diags.push(Diagnostic::error(
            codes::PLAN001,
            format!("plan `{}`", plan.workload()),
            format!(
                "plan covers {} records / {} memory addresses for a {}-instruction trace",
                records.len(),
                mem_addrs.len(),
                trace.len()
            ),
        ));
        return diags;
    }

    let line_bytes = plan.config().l1i.line_bytes as u64;
    let mut last_line: Option<u64> = None;
    let mut record_diags = 0usize;
    let mut flagged_misses = 0u64;
    let mut broadcasts = 0u64;
    let mut hints = 0u64;

    for (idx, dyn_inst) in trace.committed.iter().enumerate() {
        let inst = program.instruction(dyn_inst.loc);
        let rec = &records[idx];
        let at = format!("plan `{}` record {idx}", plan.workload());

        // Counters for the PLAN004/PLAN005 identities below.
        if rec.flags & flag::L1I_MISS != 0 {
            flagged_misses += 1;
        }
        if rec.flags & flag::IS_HINT != 0 {
            hints += 1;
        } else if rec.dest != NO_REG {
            broadcasts += 1;
        }

        // PLAN003 — memory stream.
        if mem_addrs[idx] != dyn_inst.mem_addr.unwrap_or(DATA_BASE) {
            if record_diags < MAX_RECORD_DIAGS {
                diags.push(Diagnostic::error(
                    codes::PLAN003,
                    at.clone(),
                    format!(
                        "memory address {:#x} disagrees with the trace's {:#x}",
                        mem_addrs[idx],
                        dyn_inst.mem_addr.unwrap_or(DATA_BASE)
                    ),
                ));
            }
            record_diags += 1;
        }

        // PLAN002 — field round-trip.
        let mut expected_srcs = [NO_REG; 2];
        for (slot, src) in expected_srcs.iter_mut().zip(inst.srcs.iter()) {
            if let Some(arch) = src {
                *slot = dense_arch(*arch);
            }
        }
        let expected_dest = inst.dest.map_or(NO_REG, dense_arch);
        let expected_latency = inst.opcode.latency().max(1) as u8;
        let expected_hint = inst.iq_hint.unwrap_or(0);
        let line = dyn_inst.addr / line_bytes;
        let expected_new_line = last_line != Some(line);
        last_line = Some(line);
        let expected_ends_group = if inst.opcode.is_cond_branch() {
            dyn_inst.taken.unwrap_or(false)
        } else {
            inst.opcode.is_control()
        };

        let mismatch = if rec.dest != expected_dest {
            Some(format!("dest {} ≠ expected {expected_dest}", rec.dest))
        } else if rec.srcs != expected_srcs {
            Some(format!("srcs {:?} ≠ expected {expected_srcs:?}", rec.srcs))
        } else if rec.fu != inst.opcode.fu_class() {
            Some(format!(
                "fu {:?} ≠ expected {:?}",
                rec.fu,
                inst.opcode.fu_class()
            ))
        } else if rec.latency != expected_latency {
            Some(format!(
                "latency {} ≠ expected {expected_latency}",
                rec.latency
            ))
        } else if (rec.flags & flag::HAS_HINT != 0) != inst.iq_hint.is_some() {
            Some("HAS_HINT flag disagrees with the instruction's iq_hint".to_string())
        } else if inst.iq_hint.is_some() && rec.hint != expected_hint {
            Some(format!("hint {} ≠ expected {expected_hint}", rec.hint))
        } else if (rec.flags & flag::IS_HINT != 0) != inst.is_hint_noop() {
            Some("IS_HINT flag disagrees with the opcode".to_string())
        } else if (rec.flags & flag::IS_LOAD != 0) != inst.opcode.is_load() {
            Some("IS_LOAD flag disagrees with the opcode".to_string())
        } else if (rec.flags & flag::IS_STORE != 0) != inst.opcode.is_store() {
            Some("IS_STORE flag disagrees with the opcode".to_string())
        } else if (rec.flags & flag::ENDS_GROUP != 0) != expected_ends_group {
            Some("ENDS_GROUP flag disagrees with the control-flow outcome".to_string())
        } else if (rec.flags & flag::NEW_LINE != 0) != expected_new_line {
            Some("NEW_LINE flag disagrees with the fetch-line sequence".to_string())
        } else if rec.flags & flag::L1I_MISS != 0 && rec.flags & flag::NEW_LINE == 0 {
            Some("L1I_MISS set on a record that performs no I-cache access".to_string())
        } else {
            None
        };
        if let Some(problem) = mismatch {
            if record_diags < MAX_RECORD_DIAGS {
                diags.push(Diagnostic::error(codes::PLAN002, at, problem));
            }
            record_diags += 1;
        }
    }
    if record_diags > MAX_RECORD_DIAGS {
        diags.push(Diagnostic::error(
            codes::PLAN002,
            format!("plan `{}`", plan.workload()),
            format!(
                "{} further per-record findings suppressed",
                record_diags - MAX_RECORD_DIAGS
            ),
        ));
    }

    // PLAN004 — I-miss stream consistency.
    if plan.imiss_addrs().len() as u64 != flagged_misses {
        diags.push(Diagnostic::error(
            codes::PLAN004,
            format!("plan `{}`", plan.workload()),
            format!(
                "{} I-miss addresses for {} L1I_MISS-flagged records",
                plan.imiss_addrs().len(),
                flagged_misses
            ),
        ));
    }

    // PLAN005 — baked-counter identities.
    let baked = plan.baked_stats();
    let total = trace.len() as u64;
    let mut identity = |ok: bool, what: String| {
        if !ok {
            diags.push(Diagnostic::error(
                codes::PLAN005,
                format!("plan `{}`", plan.workload()),
                what,
            ));
        }
    };
    identity(
        baked.committed + baked.committed_hints == total,
        format!(
            "committed {} + hints {} ≠ trace length {total}",
            baked.committed, baked.committed_hints
        ),
    );
    identity(
        baked.committed_hints == hints,
        format!(
            "committed_hints {} ≠ {} IS_HINT records",
            baked.committed_hints, hints
        ),
    );
    identity(
        baked.dispatched == baked.committed
            && baked.issued == baked.committed
            && baked.iq_writes == baked.committed
            && baked.iq_reads == baked.committed,
        format!(
            "dispatched/issued/iq_writes/iq_reads ({}/{}/{}/{}) must all equal committed {}",
            baked.dispatched, baked.issued, baked.iq_writes, baked.iq_reads, baked.committed
        ),
    );
    identity(
        baked.wakeup_broadcasts == broadcasts,
        format!(
            "wakeup_broadcasts {} ≠ {} destination-writing records",
            baked.wakeup_broadcasts, broadcasts
        ),
    );
    identity(
        baked.wakeup_comparisons_full
            == baked.wakeup_broadcasts * 2 * plan.config().iq.entries as u64,
        format!(
            "wakeup_comparisons_full {} ≠ broadcasts × 2 × capacity",
            baked.wakeup_comparisons_full
        ),
    );
    identity(
        baked.icache_misses == flagged_misses,
        format!(
            "icache_misses {} ≠ {} L1I_MISS-flagged records",
            baked.icache_misses, flagged_misses
        ),
    );
    diags
}
