//! Layer 1: structural verification of a [`Program`].
//!
//! Checks, per procedure:
//!
//! * reference well-formedness — every branch target, fall-through, call
//!   target and entry points at an existing block/procedure (`CFG001`),
//! * block shape — control transfers only at block ends (`CFG002`), every
//!   block either returns or has a successor (`CFG003`),
//! * CFG consistency — the built [`Cfg`]'s successor/predecessor lists are
//!   symmetric and agree with the blocks' terminators (`CFG004`),
//! * dominator-tree consistency — [`Dominators`] is cross-checked against
//!   an independent, reachability-based recomputation: `a` dominates `b`
//!   iff `b` becomes unreachable when paths may not pass through `a`
//!   (`DOM001`),
//! * loop-forest consistency — every natural loop has a back edge and its
//!   header dominates the whole body (`LOOP001`),
//! * instruction encoding — per-instruction operand-shape validation
//!   (`ISA001`) and hint-value range (`ISA002`),
//! * def-before-use — registers read on some path before any definition
//!   are reported as warnings (`REG001`); the executor zero-initialises
//!   the register file and procedures legitimately read incoming argument
//!   registers, so this is advisory, not an error.

use crate::diag::{codes, Diagnostic};
use sdiq_ir::{Cfg, DefiniteAssignment, Dominators, LoopNest};
use sdiq_isa::{BlockId, Procedure, Program};
use std::collections::HashSet;

/// Runs every structural check over `program`.
pub fn verify_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if program.entry.0 >= program.procedures.len() {
        diags.push(Diagnostic::error(
            codes::CFG001,
            format!("program `{}`", program.name),
            format!(
                "entry procedure #{} does not exist ({} procedures)",
                program.entry.0,
                program.procedures.len()
            ),
        ));
        return diags;
    }
    for (pid, proc) in program.iter_procs() {
        let _ = pid;
        verify_procedure(program, proc, &mut diags);
    }
    diags
}

fn loc(proc: &Procedure, block: BlockId) -> String {
    format!("proc `{}` block b{}", proc.name, block.0)
}

fn verify_procedure(program: &Program, proc: &Procedure, diags: &mut Vec<Diagnostic>) {
    let num_blocks = proc.blocks.len();
    if proc.entry.0 >= num_blocks {
        diags.push(Diagnostic::error(
            codes::CFG001,
            format!("proc `{}`", proc.name),
            format!(
                "entry block b{} does not exist ({num_blocks} blocks)",
                proc.entry.0
            ),
        ));
        return;
    }

    let mut dangling = false;
    for (bid, block) in proc.iter_blocks() {
        // References out of the block / procedure space.
        if let Some(ft) = block.fallthrough {
            if ft.0 >= num_blocks {
                dangling = true;
                diags.push(Diagnostic::error(
                    codes::CFG001,
                    loc(proc, bid),
                    format!("fall-through edge to non-existent block b{}", ft.0),
                ));
            }
        }
        let mut first_control: Option<usize> = None;
        for (idx, inst) in block.instructions.iter().enumerate() {
            if let Err(problem) = inst.validate() {
                diags.push(Diagnostic::error(
                    codes::ISA001,
                    format!("{} inst {idx}", loc(proc, bid)),
                    problem,
                ));
            }
            if inst.iq_hint == Some(0) {
                diags.push(Diagnostic::error(
                    codes::ISA002,
                    format!("{} inst {idx}", loc(proc, bid)),
                    "resize hint advertises 0 issue-queue entries (encoder range is 1..=255)",
                ));
            }
            if let Some(target) = inst.branch_target {
                if target.0 >= num_blocks {
                    dangling = true;
                    diags.push(Diagnostic::error(
                        codes::CFG001,
                        format!("{} inst {idx}", loc(proc, bid)),
                        format!("branch to non-existent block b{}", target.0),
                    ));
                }
            }
            if let Some(callee) = inst.call_target {
                if callee.0 >= program.procedures.len() {
                    dangling = true;
                    diags.push(Diagnostic::error(
                        codes::CFG001,
                        format!("{} inst {idx}", loc(proc, bid)),
                        format!("call to non-existent procedure #{}", callee.0),
                    ));
                }
            }
            match first_control {
                None => {
                    if inst.opcode.is_control() {
                        first_control = Some(idx);
                    }
                }
                Some(c) => {
                    if inst.is_hint_noop() {
                        diags.push(Diagnostic::error(
                            codes::ANN002,
                            format!("{} inst {idx}", loc(proc, bid)),
                            format!(
                                "hint NOOP after the control transfer at inst {c}: decode never reaches it"
                            ),
                        ));
                    } else {
                        diags.push(Diagnostic::error(
                            codes::CFG002,
                            format!("{} inst {idx}", loc(proc, bid)),
                            format!("instruction after the control transfer at inst {c}"),
                        ));
                    }
                }
            }
        }
        if block.successors().iter().all(|s| s.0 < num_blocks)
            && block.successors().is_empty()
            && !block.is_exit()
        {
            diags.push(Diagnostic::error(
                codes::CFG003,
                loc(proc, bid),
                "block neither returns nor has a successor: control falls off the procedure",
            ));
        }
    }
    if dangling {
        // The CFG builder indexes blocks by the edges checked above; with a
        // dangling reference the graph-level checks would just panic.
        return;
    }

    let cfg = Cfg::build(proc);
    verify_cfg_consistency(proc, &cfg, diags);
    let dominators = Dominators::compute(&cfg);
    verify_dominators(proc, &cfg, &dominators, diags);
    let loops = LoopNest::find(&cfg, &dominators);
    verify_loops(proc, &cfg, &dominators, &loops, diags);

    let assignment = DefiniteAssignment::compute(proc, &cfg);
    for (bid, idx, reg) in assignment.possibly_undefined_uses(proc, &cfg) {
        diags.push(Diagnostic::warning(
            codes::REG001,
            format!("{} inst {idx}", loc(proc, bid)),
            format!("{reg:?} may be read before any definition in this procedure"),
        ));
    }
}

/// `CFG004`: the built CFG must be edge-symmetric and agree with the
/// blocks' terminators.
fn verify_cfg_consistency(proc: &Procedure, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    for (bid, block) in proc.iter_blocks() {
        let from_blocks: HashSet<BlockId> = block.successors().into_iter().collect();
        let from_cfg: HashSet<BlockId> = cfg.succs(bid).iter().copied().collect();
        if from_blocks != from_cfg {
            diags.push(Diagnostic::error(
                codes::CFG004,
                loc(proc, bid),
                format!(
                    "CFG successors {:?} disagree with the terminator's successors {:?}",
                    sorted(&from_cfg),
                    sorted(&from_blocks)
                ),
            ));
        }
        for &s in cfg.succs(bid) {
            if !cfg.preds(s).contains(&bid) {
                diags.push(Diagnostic::error(
                    codes::CFG004,
                    loc(proc, bid),
                    format!("edge to b{} has no matching predecessor entry", s.0),
                ));
            }
        }
        for &p in cfg.preds(bid) {
            if !cfg.succs(p).contains(&bid) {
                diags.push(Diagnostic::error(
                    codes::CFG004,
                    loc(proc, bid),
                    format!("predecessor b{} has no matching successor entry", p.0),
                ));
            }
        }
    }
}

fn sorted(set: &HashSet<BlockId>) -> Vec<usize> {
    let mut v: Vec<usize> = set.iter().map(|b| b.0).collect();
    v.sort_unstable();
    v
}

/// `DOM001`: cross-check the dominator tree against a genuinely independent
/// recomputation. `a` dominates `b` exactly when removing `a` from the
/// graph makes `b` unreachable from the entry — a property of plain
/// reachability, sharing no code with the iterative dominator algorithm.
fn verify_dominators(
    proc: &Procedure,
    cfg: &Cfg,
    dominators: &Dominators,
    diags: &mut Vec<Diagnostic>,
) {
    let entry = cfg.entry();
    let reachable: Vec<BlockId> = proc
        .iter_blocks()
        .map(|(bid, _)| bid)
        .filter(|&b| cfg.is_reachable(b))
        .collect();
    for &a in &reachable {
        let barrier: HashSet<BlockId> = std::iter::once(a).collect();
        let survives = cfg.reachable_avoiding(entry, &barrier);
        for &b in &reachable {
            if a == b {
                continue;
            }
            let brute = a == entry || !survives.contains(&b);
            let reported = dominators.dominates(a, b);
            if brute != reported {
                diags.push(Diagnostic::error(
                    codes::DOM001,
                    loc(proc, b),
                    format!(
                        "dominator tree says b{} {} b{}, reachability says the opposite",
                        a.0,
                        if reported {
                            "dominates"
                        } else {
                            "does not dominate"
                        },
                        b.0
                    ),
                ));
            }
        }
    }
}

/// `LOOP001`: every natural loop must have a back edge into its header and
/// the header must dominate the whole body.
fn verify_loops(
    proc: &Procedure,
    cfg: &Cfg,
    dominators: &Dominators,
    loops: &LoopNest,
    diags: &mut Vec<Diagnostic>,
) {
    for natural_loop in loops.loops() {
        let header = natural_loop.header;
        let has_back_edge = natural_loop
            .body
            .iter()
            .any(|&n| cfg.succs(n).contains(&header));
        if !has_back_edge {
            diags.push(Diagnostic::error(
                codes::LOOP001,
                loc(proc, header),
                "loop has no back edge into its header",
            ));
        }
        for &b in &natural_loop.body {
            if !dominators.dominates(header, b) {
                diags.push(Diagnostic::error(
                    codes::LOOP001,
                    loc(proc, b),
                    format!(
                        "loop header b{} does not dominate body block b{}",
                        header.0, b.0
                    ),
                ));
            }
        }
    }
}
