//! Property: every workload the generators can produce, at every scale,
//! verifies clean through every registered compiler pass — and the
//! finished artifacts (compiled program, execution plan) pass the full
//! static suite with zero error-severity findings.
//!
//! This is the acceptance half of the verifier contract; the mutation
//! corpus next door is the rejection half.

use proptest::prelude::*;
use sdiq_compiler::{CompilerPass, PassConfig};
use sdiq_isa::Executor;
use sdiq_sim::{ExecPlan, SimConfig};
use sdiq_verify::{lint_plan, verify_compiled, verify_program, Severity, StandardVerifier};
use sdiq_workloads::Benchmark;

/// The three shipped pass configurations (NOOP insertion, tagging, and
/// tagging with the inter-procedural FU widening).
fn configs() -> [PassConfig; 3] {
    [
        PassConfig::noop_insertion(),
        PassConfig::tagging(),
        PassConfig::improved(),
    ]
}

fn error_codes(diags: &[sdiq_verify::Diagnostic]) -> Vec<String> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{d}"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_generated_workload_verifies_clean(
        bench_idx in 0usize..Benchmark::ALL.len(),
        scale in 0.01f64..0.2f64,
    ) {
        let benchmark = Benchmark::ALL[bench_idx];
        let program = benchmark.build_scaled(scale);

        // The source program is structurally sound (warnings allowed:
        // REG001 is advisory by design).
        let errors = error_codes(&verify_program(&program));
        prop_assert!(
            errors.is_empty(),
            "{benchmark:?}@{scale:.3}: source program failed verification: {errors:?}"
        );

        for config in configs() {
            // The inter-pass verifier must stay silent through the whole
            // registered pipeline...
            let compiled = match CompilerPass::new(config)
                .run_verified(&program, Box::new(StandardVerifier))
            {
                Ok(compiled) => compiled,
                Err(err) => {
                    prop_assert!(
                        false,
                        "{benchmark:?}@{scale:.3}: inter-pass verification failed: {err}"
                    );
                    unreachable!()
                }
            };
            // ...and the finished artifact must pass the full suite,
            // including the Graham-anomaly envelope.
            let errors = error_codes(&verify_compiled(&compiled));
            prop_assert!(
                errors.is_empty(),
                "{benchmark:?}@{scale:.3}: compiled artifact failed verification: {errors:?}"
            );
        }
    }
}

proptest! {
    // Plan linting executes the workload, so fewer, smaller cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_generated_plan_lints_clean(
        bench_idx in 0usize..Benchmark::ALL.len(),
        scale in 0.01f64..0.06f64,
    ) {
        let benchmark = Benchmark::ALL[bench_idx];
        let source = benchmark.build_scaled(scale);
        for config in configs() {
            let compiled = CompilerPass::new(config).run(&source);
            let program = compiled.program;
            let trace = match Executor::new(&program).run(20_000) {
                Ok(trace) => trace,
                Err(fault) => {
                    prop_assert!(
                        false,
                        "{benchmark:?}@{scale:.3}: workload faulted: {fault:?}"
                    );
                    unreachable!()
                }
            };
            let plan = ExecPlan::build(SimConfig::hpca2005(), &program, &trace);
            let errors = error_codes(&lint_plan(&plan, &program, &trace));
            prop_assert!(
                errors.is_empty(),
                "{benchmark:?}@{scale:.3}: plan failed lint: {errors:?}"
            );
        }
    }
}
