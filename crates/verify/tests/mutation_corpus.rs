//! Mutation corpus: deliberately corrupted programs, annotations and plans
//! must be *rejected*, each with its documented stable diagnostic code.
//!
//! The clean-workload proptests prove the verifier accepts everything the
//! toolchain actually produces; this file proves it is not vacuously
//! accepting. Every mutation starts from a real compiled benchmark (so the
//! corruption is the only anomaly) and asserts the specific `codes::*`
//! entry fires — not merely "some error".

use sdiq_compiler::{CompiledProgram, CompilerPass, Pass, PassConfig, PassManager, PassState};
use sdiq_isa::reg::int_reg;
use sdiq_isa::{BlockId, Executor, Instruction, Opcode, Program, Trace};
use sdiq_sim::plan::{flag, ExecPlan, NO_REG};
use sdiq_sim::SimConfig;
use sdiq_verify::{
    codes, lint_plan, verify_annotations, verify_compiled, verify_envelope, verify_program,
    StandardVerifier,
};
use sdiq_workloads::Benchmark;

/// A small real program: scaled-down gzip (loop-dominated, has calls).
fn program() -> Program {
    Benchmark::Gzip.build_scaled(0.02)
}

fn compiled() -> CompiledProgram {
    CompilerPass::new(PassConfig::noop_insertion()).run(&program())
}

fn assert_code(diags: &[sdiq_verify::Diagnostic], code: &str) {
    assert!(
        diags.iter().any(|d| d.code == code),
        "expected a {code} diagnostic, got: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
}

fn assert_clean(program: &Program) {
    let errors: Vec<_> = verify_program(program)
        .into_iter()
        .filter(|d| d.severity == sdiq_verify::Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "baseline program must verify clean: {errors:?}"
    );
}

// --- structural mutations (CFG*, ISA*) ---------------------------------

#[test]
fn dangling_branch_target_is_cfg001() {
    let mut program = program();
    assert_clean(&program);
    let site = program
        .procedures
        .iter()
        .enumerate()
        .find_map(|(p, proc)| {
            proc.blocks.iter().enumerate().find_map(|(b, block)| {
                block
                    .instructions
                    .iter()
                    .position(|i| i.branch_target.is_some())
                    .map(|idx| (p, b, idx))
            })
        })
        .expect("gzip has conditional branches");
    program.procedures[site.0].blocks[site.1].instructions[site.2].branch_target =
        Some(BlockId(9999));
    assert_code(&verify_program(&program), codes::CFG001);
}

#[test]
fn dangling_fallthrough_is_cfg001() {
    let mut program = program();
    let site = program
        .procedures
        .iter()
        .enumerate()
        .find_map(|(p, proc)| {
            proc.blocks
                .iter()
                .position(|b| b.fallthrough.is_some())
                .map(|b| (p, b))
        })
        .expect("gzip has fall-through edges");
    program.procedures[site.0].blocks[site.1].fallthrough = Some(BlockId(9999));
    assert_code(&verify_program(&program), codes::CFG001);
}

/// A block ending in a control transfer, for the trailing-instruction
/// mutations.
fn control_terminated_block(program: &Program) -> (usize, usize) {
    program
        .procedures
        .iter()
        .enumerate()
        .find_map(|(p, proc)| {
            proc.blocks
                .iter()
                .position(|b| b.instructions.last().is_some_and(|i| i.opcode.is_control()))
                .map(|b| (p, b))
        })
        .expect("gzip has control-terminated blocks")
}

#[test]
fn instruction_after_control_transfer_is_cfg002() {
    let mut program = program();
    let (p, b) = control_terminated_block(&program);
    program.procedures[p].blocks[b]
        .instructions
        .push(Instruction::rrr(
            Opcode::Add,
            int_reg(1),
            int_reg(1),
            int_reg(2),
        ));
    assert_code(&verify_program(&program), codes::CFG002);
}

#[test]
fn hint_noop_after_control_transfer_is_ann002() {
    let mut program = program();
    let (p, b) = control_terminated_block(&program);
    let mut hint = Instruction::new(Opcode::HintNoop);
    hint.iq_hint = Some(8);
    program.procedures[p].blocks[b].instructions.push(hint);
    let diags = verify_program(&program);
    assert_code(&diags, codes::ANN002);
    // The unreachable hint is ANN002 specifically, not the generic CFG002.
    assert!(!diags.iter().any(|d| d.code == codes::CFG002));
}

#[test]
fn block_falling_off_the_procedure_is_cfg003() {
    let mut program = program();
    // An unconditional jump with no fall-through: popping it leaves the
    // block with no successor and no return.
    let site = program
        .procedures
        .iter()
        .enumerate()
        .find_map(|(p, proc)| {
            proc.blocks.iter().enumerate().find_map(|(b, block)| {
                let last_is_jump = block
                    .instructions
                    .last()
                    .is_some_and(|i| i.opcode == Opcode::Jump);
                (last_is_jump && block.fallthrough.is_none()).then_some((p, b))
            })
        })
        .expect("gzip has unconditional jumps");
    program.procedures[site.0].blocks[site.1].instructions.pop();
    assert_code(&verify_program(&program), codes::CFG003);
}

#[test]
fn malformed_instruction_encoding_is_isa001() {
    let mut program = program();
    let site = program
        .procedures
        .iter()
        .enumerate()
        .find_map(|(p, proc)| {
            proc.blocks.iter().enumerate().find_map(|(b, block)| {
                block
                    .instructions
                    .iter()
                    .position(|i| i.opcode.is_load())
                    .map(|idx| (p, b, idx))
            })
        })
        .expect("gzip has loads");
    // A load without a memory reference fails operand-shape validation.
    program.procedures[site.0].blocks[site.1].instructions[site.2].mem = None;
    assert_code(&verify_program(&program), codes::ISA001);
}

#[test]
fn zero_entry_hint_is_isa002() {
    let mut compiled = compiled();
    let site = compiled
        .program
        .procedures
        .iter()
        .enumerate()
        .find_map(|(p, proc)| {
            proc.blocks.iter().enumerate().find_map(|(b, block)| {
                block
                    .instructions
                    .iter()
                    .position(|i| i.iq_hint.is_some())
                    .map(|idx| (p, b, idx))
            })
        })
        .expect("the compiled program carries hints");
    compiled.program.procedures[site.0].blocks[site.1].instructions[site.2].iq_hint = Some(0);
    assert_code(&verify_program(&compiled.program), codes::ISA002);
}

// --- annotation mutations (ANN*, ENV*) ---------------------------------

#[test]
fn out_of_range_window_is_ann001() {
    let mut compiled = compiled();
    let cap = compiled.config.widths.iq_capacity as u32;
    let key = *compiled
        .annotations
        .block_entries
        .keys()
        .next()
        .expect("the compile annotates blocks");
    compiled.annotations.block_entries.insert(key, cap + 100);
    assert_code(&verify_annotations(&compiled), codes::ANN001);
}

#[test]
fn stale_loop_preheader_value_is_ann003() {
    let mut compiled = compiled();
    let (key, value) = compiled
        .annotations
        .loop_preheader_entries
        .iter()
        .map(|(k, v)| (*k, *v))
        .find(|(k, _)| !compiled.annotations.max_before_call.contains(k))
        .expect("gzip has loop pre-headers without library calls");
    // The annotation map now disagrees with the hint actually emitted last
    // in the block — the loop would run under the wrong window.
    compiled
        .annotations
        .loop_preheader_entries
        .insert(key, if value > 2 { value - 1 } else { value + 1 });
    assert_code(&verify_annotations(&compiled), codes::ANN003);
}

#[test]
fn dangling_low_energy_block_is_ann004() {
    use sdiq_isa::ProcId;
    use sdiq_verify::annotations::check_low_energy_blocks;
    let mut compiled = CompilerPass::new(PassConfig::low_energy_encoding()).run(&program());
    assert!(
        !compiled.annotations.low_energy_blocks.is_empty(),
        "gzip is loop-dominated, the pass marks its loop blocks"
    );
    assert!(
        check_low_energy_blocks(&compiled.program, &compiled.annotations).is_empty(),
        "a real compile's low-energy marks verify clean"
    );
    compiled
        .annotations
        .low_energy_blocks
        .insert(sdiq_isa::BlockRef {
            proc: ProcId(compiled.program.procedures.len()),
            block: BlockId(0),
        });
    assert_code(
        &check_low_energy_blocks(&compiled.program, &compiled.annotations),
        codes::ANN004,
    );
}

#[test]
fn library_low_energy_block_is_ann004() {
    use sdiq_verify::annotations::check_low_energy_blocks;
    let mut compiled = CompilerPass::new(PassConfig::low_energy_encoding()).run(&program());
    // Retroactively declare a marked procedure a library routine: the mark
    // now points where the pass could never legitimately have looked.
    let marked = *compiled
        .annotations
        .low_energy_blocks
        .iter()
        .next()
        .expect("gzip is loop-dominated, the pass marks its loop blocks");
    compiled.program.proc_mut(marked.proc).is_library = true;
    assert_code(
        &check_low_energy_blocks(&compiled.program, &compiled.annotations),
        codes::ANN004,
    );
}

#[test]
fn window_below_recomputed_demand_is_env001() {
    let mut compiled = compiled();
    let cap = compiled.config.widths.iq_capacity as u32;
    let key = *compiled
        .block_requirements
        .iter()
        .find(|(_, req)| req.entries.min(cap) >= 2)
        .map(|(k, _)| k)
        .expect("some DAG block demands at least 2 entries");
    let required = compiled.block_requirements[&key].entries.min(cap);
    compiled.annotations.block_entries.insert(key, required - 1);
    assert_code(&verify_envelope(&compiled), codes::ENV001);
}

#[test]
fn stripped_annotations_are_env001_and_env002() {
    let mut compiled = compiled();
    assert!(
        !compiled.loop_requirements.is_empty(),
        "gzip is loop-dominated"
    );
    // Strip every advertised window: all analysed DAG blocks and loops now
    // have demand but no cover.
    compiled.annotations.block_entries.clear();
    compiled.annotations.loop_preheader_entries.clear();
    let diags = verify_envelope(&compiled);
    assert_code(&diags, codes::ENV001);
    assert_code(&diags, codes::ENV002);
}

// --- plan mutations (PLAN*) --------------------------------------------

fn planned() -> (ExecPlan, Program, Trace) {
    let compiled = compiled();
    let program = compiled.program;
    let trace = Executor::new(&program)
        .run(4_000)
        .expect("gzip executes cleanly");
    let plan = ExecPlan::build(SimConfig::hpca2005(), &program, &trace);
    (plan, program, trace)
}

#[test]
fn baseline_plan_lints_clean() {
    let (plan, program, trace) = planned();
    let diags = lint_plan(&plan, &program, &trace);
    assert!(
        diags.is_empty(),
        "unmutated plan must lint clean: {diags:?}"
    );
}

#[test]
fn trace_length_mismatch_is_plan001() {
    let (plan, program, _) = planned();
    let short_trace = Executor::new(&program)
        .run(1_000)
        .expect("gzip executes cleanly");
    assert_ne!(plan.records().len(), short_trace.len());
    assert_code(&lint_plan(&plan, &program, &short_trace), codes::PLAN001);
}

#[test]
fn swapped_record_fields_are_plan002() {
    let (mut plan, program, trace) = planned();
    let idx = plan
        .records()
        .iter()
        .position(|r| r.dest != NO_REG && r.srcs[0] != r.dest)
        .expect("some record writes a destination distinct from its source");
    let rec = &mut plan.records_mut()[idx];
    std::mem::swap(&mut rec.dest, &mut rec.srcs[0]);
    assert_code(&lint_plan(&plan, &program, &trace), codes::PLAN002);
}

#[test]
fn corrupted_memory_stream_is_plan003() {
    let (plan, program, mut trace) = planned();
    let idx = trace
        .committed
        .iter()
        .position(|d| d.mem_addr.is_some())
        .expect("gzip performs memory accesses");
    // The plan no longer matches the trace it claims to have been built
    // from.
    let addr = trace.committed[idx].mem_addr.map(|a| a + 64);
    trace.committed[idx].mem_addr = addr;
    assert_code(&lint_plan(&plan, &program, &trace), codes::PLAN003);
}

#[test]
fn dropped_miss_flag_is_plan004_and_plan005() {
    let (mut plan, program, trace) = planned();
    let idx = plan
        .records()
        .iter()
        .position(|r| r.flags & flag::L1I_MISS != 0)
        .expect("a cold I-cache always misses at least once");
    plan.records_mut()[idx].flags &= !flag::L1I_MISS;
    let diags = lint_plan(&plan, &program, &trace);
    // The I-miss address stream and the baked icache_misses counter both
    // disagree with the flags now.
    assert_code(&diags, codes::PLAN004);
    assert_code(&diags, codes::PLAN005);
}

// --- full-suite and pass-manager integration ---------------------------

#[test]
fn verify_compiled_runs_all_layers() {
    let mut compiled = compiled();
    let cap = compiled.config.widths.iq_capacity as u32;
    let key = *compiled
        .annotations
        .block_entries
        .keys()
        .next()
        .expect("the compile annotates blocks");
    compiled.annotations.block_entries.insert(key, cap + 100);
    // One corruption, observed by two layers through the one entry point.
    let diags = verify_compiled(&compiled);
    assert_code(&diags, codes::ANN001);
}

#[test]
fn corrupting_pass_is_caught_and_named_by_the_inter_pass_verifier() {
    /// A pass that plants an illegal window, registered under a
    /// window-producing name so the standard verifier audits it.
    struct PlantBadWindow;
    impl Pass for PlantBadWindow {
        fn name(&self) -> &'static str {
            "dag-windows"
        }
        fn description(&self) -> &'static str {
            "test-only: emit an out-of-range advertised window"
        }
        fn run(&self, state: &mut PassState<'_>) {
            let cap = state.config.widths.iq_capacity as u32;
            let block_ref = sdiq_isa::BlockRef {
                proc: state.program.entry,
                block: state.program.proc(state.program.entry).entry,
            };
            state.annotations.block_entries.insert(block_ref, cap + 7);
        }
    }
    let program = program();
    let mut manager = PassManager::new(PassConfig::noop_insertion());
    manager.register(Box::new(PlantBadWindow));
    let err = manager
        .with_verifier(Box::new(StandardVerifier))
        .run(&program)
        .expect_err("the planted window must abort the pipeline");
    assert_eq!(err.pass, "dag-windows");
    assert!(err.diagnostics.iter().any(|d| d.code == codes::ANN001));
}
