//! The synthetic program generator.
//!
//! Programs follow a common template whose dimensions are set by the
//! [`WorkloadProfile`]:
//!
//! ```text
//! main:    init → outer loop {
//!              dispatch switch (gcc/perlbmk-style, optional)
//!              call helper_0 … call helper_(n-1)   (some through a library stub)
//!          } → exit
//! helper_i: init → inner loop { ALU chains, multiplies, loads/stores } →
//!           if/else diamonds → return
//! libstub:  small library routine (marked `is_library`, §4.4)
//! ```
//!
//! All loops are bounded by induction variables, so every generated program
//! terminates; register `r31` is reserved for the outer induction variable
//! and is never written by helpers.

use crate::profile::WorkloadProfile;
use crate::Benchmark;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sdiq_isa::builder::{BlockBuilder, ProgramBuilder};
use sdiq_isa::reg::int_reg;
use sdiq_isa::{BlockId, ProcId, Program};

/// Outer-loop induction variable (never clobbered by helpers).
const OUTER_INDUCTION: u8 = 31;
/// Inner-loop induction variable (reset at every helper entry).
const INNER_INDUCTION: u8 = 30;
/// Strided-access base address register.
const MEM_BASE: u8 = 28;
/// Pointer-chasing address register.
const PTR_REG: u8 = 27;
/// Switch-case index register.
const SWITCH_INDEX: u8 = 26;
/// Register holding the number of switch cases.
const SWITCH_CASES_REG: u8 = 25;

/// Base of the synthetic data segment.
const DATA_BASE: i64 = 0x1000_0000;

/// Register carrying the loop's serial recurrence (the critical cyclic
/// dependence set of §4.3).
const RECURRENCE_REG: u8 = 2;
/// Registers receiving loaded values (`r10`, `r11`, ...).
const LOAD_VALUE_BASE: u8 = 10;

/// Emits the inner-loop memory traffic: the loads whose values feed the
/// iteration's parallel work, one store, and the stride advance of the base
/// address. For pointer-chasing profiles the loads *are* the recurrence.
fn emit_memory(bb: &mut BlockBuilder<'_>, profile: &WorkloadProfile) -> usize {
    if profile.pointer_chasing {
        // mcf-style: the loaded value becomes the next address, scattering
        // accesses over a large footprint (most will miss). This load chain
        // is the loop's critical recurrence.
        for _ in 0..profile.mem_ops_per_iteration {
            bb.load(int_reg(PTR_REG), int_reg(PTR_REG), 0);
        }
        // A consumer of the chased pointer that the parallel work reads.
        bb.addi(int_reg(LOAD_VALUE_BASE), int_reg(PTR_REG), 1);
        1
    } else {
        let loads = profile.mem_ops_per_iteration.max(1);
        for m in 0..loads {
            let dest = int_reg(LOAD_VALUE_BASE + (m % 6) as u8);
            bb.load(dest, int_reg(MEM_BASE), (m as i64) * 8);
        }
        // One store back plus a stride advance of the base.
        bb.store(int_reg(RECURRENCE_REG), int_reg(MEM_BASE), 0);
        bb.addi(int_reg(MEM_BASE), int_reg(MEM_BASE), profile.mem_stride);
        loads.min(6)
    }
}

/// Emits the loop's serial recurrence chain: a dependent sequence of
/// `length` operations on [`RECURRENCE_REG`], including multiplies so that
/// the recurrence-limited initiation interval is several cycles. This is
/// what makes the synthetic loops *recurrence bound*: fetch outruns issue,
/// the unmanaged queue fills with instructions from future iterations, and
/// the compiler's loop analysis can bound the window without slowing the
/// critical path.
fn emit_recurrence(bb: &mut BlockBuilder<'_>, length: usize, with_multiplies: bool) {
    let r = int_reg(RECURRENCE_REG);
    for k in 0..length.max(1) {
        if with_multiplies && k % 3 == 0 {
            bb.mul(r, r, int_reg(3));
        } else {
            bb.addi(r, r, (k as i64 % 5) + 1);
        }
    }
}

/// Emits the iteration's parallel work: `chains` mutually independent
/// dependence chains of `length` instructions, each seeded from one of the
/// iteration's loaded values (so they are *not* loop carried and can overlap
/// freely across iterations).
fn emit_parallel_chains(
    bb: &mut BlockBuilder<'_>,
    rng: &mut SmallRng,
    chains: usize,
    length: usize,
    live_loads: usize,
) {
    for c in 0..chains {
        let reg = int_reg(20 + (c % 6) as u8);
        let seed = int_reg(LOAD_VALUE_BASE + (c % live_loads.max(1)) as u8);
        bb.add(reg, seed, int_reg(1));
        for k in 1..length.max(1) {
            bb.addi(reg, reg, (k as i64 % 7) + 1);
        }
        let _ = rng;
    }
}

/// Builds one helper procedure and returns its id.
fn build_helper(
    b: &mut ProgramBuilder,
    profile: &WorkloadProfile,
    rng: &mut SmallRng,
    index: usize,
) -> ProcId {
    let proc = b.procedure(format!("helper_{index}"));
    let p = b.proc_mut(proc);

    let entry = p.block();
    let loop_body = p.block();
    // One (cond, then, else, join) quadruple per diamond.
    let diamond_blocks: Vec<(BlockId, BlockId, BlockId, BlockId)> = (0..profile.diamonds)
        .map(|_| (p.block(), p.block(), p.block(), p.block()))
        .collect();
    let exit = p.block();
    let after_loop = diamond_blocks.first().map(|d| d.0).unwrap_or(exit);

    // Entry: set up the base address and induction variable.
    let footprint_slice =
        (profile.mem_footprint / (profile.helper_procedures.max(1) as i64)).max(4096);
    let base_addr = DATA_BASE + index as i64 * footprint_slice;
    p.with_block(entry, |bb| {
        bb.li(int_reg(MEM_BASE), base_addr);
        if profile.pointer_chasing {
            bb.li(int_reg(PTR_REG), DATA_BASE + profile.mem_footprint / 2);
        }
        bb.li(int_reg(INNER_INDUCTION), 0);
        bb.li(int_reg(1), index as i64 + 1);
        bb.li(int_reg(RECURRENCE_REG), 3 + index as i64);
        bb.li(int_reg(3), 5);
        bb.jump(loop_body);
    });

    // Inner loop body: loads, the serial recurrence, the parallel work, the
    // induction update and the back edge.
    p.with_block(loop_body, |bb| {
        let live_loads = emit_memory(bb, profile);
        emit_recurrence(bb, profile.chain_length, true);
        for m in 0..profile.multiplies_per_iteration {
            let dest = int_reg(20 + (m % 4) as u8);
            bb.mul(
                dest,
                int_reg(LOAD_VALUE_BASE + (m % live_loads.max(1)) as u8),
                int_reg(3),
            );
        }
        emit_parallel_chains(
            bb,
            rng,
            profile.ilp_chains,
            profile.chain_length,
            live_loads,
        );
        bb.addi(int_reg(INNER_INDUCTION), int_reg(INNER_INDUCTION), 1);
        bb.blt(
            int_reg(INNER_INDUCTION),
            profile.inner_trip_count,
            loop_body,
            after_loop,
        );
    });

    // Diamonds after the loop.
    for (d, &(cond, then_b, else_b, join)) in diamond_blocks.iter().enumerate() {
        let next = diamond_blocks.get(d + 1).map(|q| q.0).unwrap_or(exit);
        let threshold = rng.gen_range(-3..4);
        p.with_block(cond, |bb| {
            if profile.data_dependent_branches {
                // Condition on loaded (hash-initialised) data: ≈50% taken,
                // poorly predictable.
                bb.load(int_reg(20), int_reg(MEM_BASE), 16 + d as i64 * 8);
                bb.slti(int_reg(21), int_reg(20), threshold);
                bb.bne(int_reg(21), 0, then_b, else_b);
            } else {
                // Condition on deterministic per-call state: predictable.
                bb.slti(int_reg(21), int_reg(1), (index as i64 % 3) + 1);
                bb.bne(int_reg(21), 0, then_b, else_b);
            }
        });
        p.with_block(then_b, |bb| {
            bb.addi(int_reg(22), int_reg(1), 7);
            bb.addi(int_reg(23), int_reg(22), 1);
            bb.jump(join);
        });
        p.with_block(else_b, |bb| {
            bb.subi(int_reg(22), int_reg(1), 3);
            bb.xor(int_reg(23), int_reg(22), int_reg(1));
            bb.jump(join);
        });
        p.with_block(join, |bb| {
            bb.addi(int_reg(24), int_reg(23), 2);
            bb.jump(next);
        });
    }

    p.with_block(exit, |bb| {
        bb.ret();
    });
    p.set_entry(entry);
    proc
}

/// Builds the shared library stub (marked `is_library`; the compiler pass
/// never analyses it and opens the queue before calls to it, §4.4).
fn build_library_stub(b: &mut ProgramBuilder) -> ProcId {
    let proc = b.library_procedure("lib_memops");
    let p = b.proc_mut(proc);
    let entry = p.block();
    let body = p.block();
    let exit = p.block();
    p.with_block(entry, |bb| {
        bb.li(int_reg(29), 0);
        bb.jump(body);
    });
    p.with_block(body, |bb| {
        bb.load(int_reg(18), int_reg(MEM_BASE), 0);
        bb.addi(int_reg(18), int_reg(18), 1);
        bb.store(int_reg(18), int_reg(MEM_BASE), 0);
        bb.addi(int_reg(29), int_reg(29), 1);
        bb.blt(int_reg(29), 4, body, exit);
    });
    p.with_block(exit, |bb| {
        bb.ret();
    });
    p.set_entry(entry);
    proc
}

/// Generates the synthetic program for `benchmark` under `profile`.
pub fn generate(benchmark: Benchmark, profile: &WorkloadProfile) -> Program {
    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let mut b = ProgramBuilder::new();
    b.name(benchmark.name());

    // Helpers and (optionally) the library stub.
    let helpers: Vec<ProcId> = (0..profile.helper_procedures)
        .map(|i| build_helper(&mut b, profile, &mut rng, i))
        .collect();
    let library = if profile.library_call_fraction > 0.0 {
        Some(build_library_stub(&mut b))
    } else {
        None
    };

    // Main procedure.
    let main = b.procedure("main");
    {
        let p = b.proc_mut(main);
        let entry = p.block();
        let outer_hdr = p.block();

        // Switch dispatch blocks (cascade of compares) + case bodies + join.
        let switch_cases = profile.switch_cases;
        let dispatch_blocks: Vec<BlockId> = (0..switch_cases).map(|_| p.block()).collect();
        let case_blocks: Vec<BlockId> = (0..switch_cases).map(|_| p.block()).collect();
        let after_switch = p.block();

        // One call block per helper call site, plus the loop latch and exit.
        let call_blocks: Vec<BlockId> = helpers.iter().map(|_| p.block()).collect();
        let latch = p.block();
        let exit = p.block();

        let first_after_header = if switch_cases > 0 {
            dispatch_blocks[0]
        } else {
            after_switch
        };
        let first_call = call_blocks.first().copied().unwrap_or(latch);

        p.with_block(entry, |bb| {
            bb.li(int_reg(OUTER_INDUCTION), 0);
            bb.li(int_reg(SWITCH_CASES_REG), switch_cases.max(1) as i64);
            bb.li(int_reg(MEM_BASE), DATA_BASE);
            bb.jump(outer_hdr);
        });

        p.with_block(outer_hdr, |bb| {
            // A little per-iteration work plus the switch index computation
            // (index = outer_iteration mod cases, via div/mul/sub).
            bb.addi(int_reg(2), int_reg(OUTER_INDUCTION), 13);
            bb.addi(int_reg(3), int_reg(2), 5);
            if switch_cases > 0 {
                bb.div(
                    int_reg(4),
                    int_reg(OUTER_INDUCTION),
                    int_reg(SWITCH_CASES_REG),
                );
                bb.mul(int_reg(5), int_reg(4), int_reg(SWITCH_CASES_REG));
                bb.sub(int_reg(SWITCH_INDEX), int_reg(OUTER_INDUCTION), int_reg(5));
            }
            bb.jump(first_after_header);
        });

        // Cascade dispatch: block i tests `index == i`.
        for i in 0..switch_cases {
            let next_dispatch = dispatch_blocks.get(i + 1).copied().unwrap_or(after_switch);
            let case = case_blocks[i];
            p.with_block(dispatch_blocks[i], |bb| {
                bb.beq(int_reg(SWITCH_INDEX), i as i64, case, next_dispatch);
            });
            p.with_block(case, |bb| {
                bb.addi(int_reg(6), int_reg(SWITCH_INDEX), i as i64);
                bb.xor(int_reg(7), int_reg(6), int_reg(2));
                bb.addi(int_reg(8), int_reg(7), 3);
                bb.jump(after_switch);
            });
        }

        p.with_block(after_switch, |bb| {
            bb.addi(int_reg(9), int_reg(3), 1);
            bb.jump(first_call);
        });

        // Call sites: some are routed through the library stub.
        for (i, helper) in helpers.iter().enumerate() {
            let next = call_blocks.get(i + 1).copied().unwrap_or(latch);
            let through_library =
                library.is_some() && rng.gen_range(0.0..1.0) < profile.library_call_fraction;
            let callee = if through_library {
                library.unwrap()
            } else {
                *helper
            };
            p.with_block(call_blocks[i], |bb| {
                bb.addi(int_reg(10), int_reg(9), i as i64);
                bb.call(callee, next);
            });
        }

        p.with_block(latch, |bb| {
            bb.addi(int_reg(OUTER_INDUCTION), int_reg(OUTER_INDUCTION), 1);
            bb.blt(
                int_reg(OUTER_INDUCTION),
                profile.outer_iterations,
                outer_hdr,
                exit,
            );
        });

        p.with_block(exit, |bb| {
            bb.ret();
        });
        p.set_entry(entry);
    }

    b.finish(main)
        .expect("generated workload must be structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_for;
    use sdiq_isa::Executor;

    #[test]
    fn generated_programs_execute_and_terminate() {
        for b in [
            Benchmark::Gzip,
            Benchmark::Mcf,
            Benchmark::Gcc,
            Benchmark::Vortex,
        ] {
            let program = b.build();
            let trace = Executor::new(&program)
                .run(2_000_000)
                .expect("executes cleanly");
            assert!(
                !trace.hit_cap,
                "{b} should terminate before the 2M-instruction cap"
            );
            assert!(trace.len() > 10_000, "{b} produced only {}", trace.len());
        }
    }

    #[test]
    fn default_dynamic_budget_is_reached_by_every_benchmark() {
        for b in Benchmark::ALL {
            let program = b.build();
            let budget = b.default_dynamic_instructions();
            let trace = Executor::new(&program).run(budget).expect("executes");
            assert_eq!(
                trace.len() as u64,
                budget.min(trace.len() as u64),
                "{b} must supply at least the default budget or terminate",
            );
            assert!(trace.len() as u64 >= budget / 2, "{b} trace too short");
        }
    }

    #[test]
    fn pointer_chasing_produces_scattered_addresses() {
        let program = Benchmark::Mcf.build();
        let trace = Executor::new(&program).run(50_000).unwrap();
        let addrs: Vec<u64> = trace.committed.iter().filter_map(|d| d.mem_addr).collect();
        assert!(addrs.len() > 100);
        let unique: std::collections::HashSet<_> = addrs.iter().collect();
        // Pointer chasing touches far more distinct addresses than a strided
        // benchmark of the same length.
        let strided = Benchmark::Gzip.build();
        let strided_trace = Executor::new(&strided).run(50_000).unwrap();
        let strided_unique: std::collections::HashSet<_> = strided_trace
            .committed
            .iter()
            .filter_map(|d| d.mem_addr)
            .collect();
        assert!(unique.len() > strided_unique.len());
    }

    #[test]
    fn branch_predictability_differs_between_crafty_and_gzip() {
        // crafty uses data-dependent diamonds, gzip does not: the taken ratio
        // of crafty's conditional branches should sit closer to 50%.
        let crafty = Benchmark::Crafty.build();
        let gzip = Benchmark::Gzip.build();
        let crafty_trace = Executor::new(&crafty).run(60_000).unwrap();
        let gzip_trace = Executor::new(&gzip).run(60_000).unwrap();
        assert!(crafty_trace.cond_branches > 500);
        assert!(gzip_trace.cond_branches > 500);
        // Not a strict invariant, but the generator should at least produce
        // both kinds of conditional behaviour.
        assert!(crafty_trace.taken_ratio() > 0.05 && crafty_trace.taken_ratio() < 0.99);
        assert!(gzip_trace.taken_ratio() > 0.05 && gzip_trace.taken_ratio() < 1.0);
    }

    #[test]
    fn library_fraction_creates_library_calls() {
        let program = Benchmark::Vortex.build();
        let lib = program
            .proc_by_name("lib_memops")
            .expect("library stub exists");
        assert!(program.proc(lib).is_library);
        // At least one call site targets the stub.
        let mut found = false;
        for (_, proc) in program.iter_procs() {
            for block in &proc.blocks {
                if block.callee() == Some(lib) {
                    found = true;
                }
            }
        }
        assert!(
            found,
            "vortex should route some calls through the library stub"
        );
    }

    #[test]
    fn gcc_has_the_most_basic_blocks() {
        let counts: Vec<(Benchmark, usize)> = Benchmark::ALL
            .iter()
            .map(|b| {
                let p = b.build();
                (
                    *b,
                    p.procedures.iter().map(|pr| pr.blocks.len()).sum::<usize>(),
                )
            })
            .collect();
        let gcc = counts.iter().find(|(b, _)| *b == Benchmark::Gcc).unwrap().1;
        let max = counts.iter().map(|(_, c)| *c).max().unwrap();
        assert_eq!(gcc, max, "gcc analogue should have the most complex CFG");
    }

    #[test]
    fn custom_profile_is_respected() {
        let mut profile = profile_for(Benchmark::Gzip);
        profile.helper_procedures = 1;
        profile.switch_cases = 0;
        profile.library_call_fraction = 0.0;
        let program = generate(Benchmark::Gzip, &profile);
        // helpers + main (no library stub).
        assert_eq!(program.procedures.len(), 2);
    }
}
