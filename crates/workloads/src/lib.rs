//! # sdiq-workloads — synthetic SPECint2000 analogues
//!
//! The paper evaluates on eleven SPEC CPU2000 integer benchmarks compiled
//! with MachineSUIF (eon and the FP suite are excluded because SUIF cannot
//! compile them, §5.1). SPEC sources and reference inputs are proprietary
//! and MachineSUIF cannot be run here, so this crate generates *synthetic
//! analogues*: deterministic programs over the [`sdiq_isa`] instruction set
//! whose structural characteristics — loop-recurrence depth, instruction-
//! level parallelism, memory footprint and access pattern, call density,
//! branch predictability, control-flow complexity — are tuned per benchmark
//! to echo the qualitative behaviour of the original (pointer-chasing and
//! memory-bound for `mcf`, call-heavy for `vortex`, a `gcc`-like big switch,
//! and so on).
//!
//! The analogues exercise exactly the program structures the paper's
//! compiler analysis reasons about (DAG blocks, loops with cyclic dependence
//! sets, procedure calls, library calls), which is what the reproduction
//! needs; they are *not* the SPEC programs, and absolute IPC values differ.
//! Dynamic instruction counts are scaled down (hundreds of thousands rather
//! than the paper's 100M-instruction samples) to keep the full experiment
//! matrix runnable in CI.
//!
//! # Example
//!
//! ```
//! use sdiq_workloads::Benchmark;
//!
//! let program = Benchmark::Mcf.build();
//! assert!(program.validate().is_ok());
//! assert_eq!(program.name, "mcf");
//! ```

pub mod generator;
pub mod profile;

pub use generator::generate;
pub use profile::WorkloadProfile;

use sdiq_isa::Program;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The eleven SPECint2000 benchmarks the paper evaluates (§5.1), reproduced
/// here as synthetic analogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// `164.gzip` — LZ77 compression: loop-dominated, strided memory,
    /// predictable branches.
    Gzip,
    /// `175.vpr` — FPGA place & route: moderate ILP, mixed branch behaviour.
    Vpr,
    /// `176.gcc` — compiler: very complex control flow (big switches), many
    /// procedures, short loops. The paper's slowest compile (Table 2).
    Gcc,
    /// `181.mcf` — minimum-cost flow: pointer chasing, memory bound, low ILP.
    /// Smallest IPC loss in the paper (0.4%).
    Mcf,
    /// `186.crafty` — chess: branchy, high ILP, shift/logic heavy, cache
    /// friendly.
    Crafty,
    /// `197.parser` — link grammar parser: many small procedures,
    /// data-dependent branches.
    Parser,
    /// `253.perlbmk` — Perl interpreter: dispatch switch plus calls.
    Perlbmk,
    /// `254.gap` — computational group theory: arithmetic/multiply heavy
    /// loops.
    Gap,
    /// `255.vortex` — object-oriented database: very call-heavy. Highest IPC
    /// loss under the NOOP scheme in the paper (5.4%).
    Vortex,
    /// `256.bzip2` — block-sorting compression: long loop recurrences and
    /// heavy functional-unit demand across calls.
    Bzip2,
    /// `300.twolf` — standard-cell place & route: loops with moderate ILP and
    /// data-dependent control.
    Twolf,
}

impl Benchmark {
    /// All benchmarks, in the order the paper's figures list them.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Gzip,
        Benchmark::Vpr,
        Benchmark::Gcc,
        Benchmark::Mcf,
        Benchmark::Crafty,
        Benchmark::Parser,
        Benchmark::Perlbmk,
        Benchmark::Gap,
        Benchmark::Vortex,
        Benchmark::Bzip2,
        Benchmark::Twolf,
    ];

    /// The benchmark's SPEC-style short name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Gzip => "gzip",
            Benchmark::Vpr => "vpr",
            Benchmark::Gcc => "gcc",
            Benchmark::Mcf => "mcf",
            Benchmark::Crafty => "crafty",
            Benchmark::Parser => "parser",
            Benchmark::Perlbmk => "perlbmk",
            Benchmark::Gap => "gap",
            Benchmark::Vortex => "vortex",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Twolf => "twolf",
        }
    }

    /// Looks a benchmark up by its short name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// The workload profile driving the generator for this benchmark.
    pub fn profile(&self) -> WorkloadProfile {
        profile::profile_for(*self)
    }

    /// Builds the benchmark's synthetic program at the default scale.
    pub fn build(&self) -> Program {
        generate(*self, &self.profile())
    }

    /// Builds the benchmark at a different dynamic-length scale (the outer
    /// iteration count is multiplied by `scale`).
    pub fn build_scaled(&self, scale: f64) -> Program {
        let mut profile = self.profile();
        profile.outer_iterations =
            ((profile.outer_iterations as f64 * scale).round() as i64).max(1);
        generate(*self, &profile)
    }

    /// Builds the benchmark at `scale` behind a shared, immutable handle.
    ///
    /// Generation is deterministic, so every holder of the handle sees the
    /// identical program; the experiment layer's artifact cache hands one
    /// `Arc<Program>` to every matrix cell that needs this
    /// (benchmark, scale) pair instead of rebuilding (or cloning) it per
    /// cell.
    pub fn build_scaled_shared(&self, scale: f64) -> Arc<Program> {
        Arc::new(self.build_scaled(scale))
    }

    /// Default dynamic-instruction budget used when executing the benchmark
    /// (the analogue of the paper's 100M-instruction simulation window,
    /// scaled down to keep the experiment matrix fast).
    pub fn default_dynamic_instructions(&self) -> u64 {
        50_000
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_unique_names() {
        let names: std::collections::HashSet<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), Benchmark::ALL.len());
    }

    #[test]
    fn from_name_round_trips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("eon"), None);
    }

    #[test]
    fn every_benchmark_builds_a_valid_program() {
        for b in Benchmark::ALL {
            let program = b.build();
            assert!(program.validate().is_ok(), "{b} must validate");
            assert_eq!(program.name, b.name());
            assert!(program.static_instruction_count() > 20, "{b} too small");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for b in [Benchmark::Gcc, Benchmark::Mcf, Benchmark::Vortex] {
            assert_eq!(b.build(), b.build());
        }
    }

    #[test]
    fn scaling_changes_only_dynamic_length() {
        let small = Benchmark::Gzip.build_scaled(0.5);
        let large = Benchmark::Gzip.build_scaled(2.0);
        assert_eq!(
            small.static_instruction_count(),
            large.static_instruction_count()
        );
    }
}
