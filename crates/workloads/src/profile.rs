//! Per-benchmark workload profiles.
//!
//! Each field captures one structural characteristic of the original SPEC
//! program that matters to the paper's technique. The values are qualitative
//! (high/medium/low knobs translated into generator parameters), chosen so
//! that the *relative* behaviour across the suite resembles the paper's:
//! `mcf` is memory-bound with little ILP, `vortex` is dominated by calls,
//! `gcc` has the most complex control flow, `crafty` is branchy but cache
//! friendly, and so on.

use crate::Benchmark;
use serde::{Deserialize, Serialize};

/// Generator parameters for one synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// RNG seed (fixed per benchmark → fully deterministic programs).
    pub seed: u64,
    /// Number of helper procedures called from the main loop.
    pub helper_procedures: usize,
    /// Iterations of each helper's inner loop.
    pub inner_trip_count: i64,
    /// Number of independent dependence chains per block (instruction-level
    /// parallelism).
    pub ilp_chains: usize,
    /// Length of each dependent chain (serialisation within a block).
    pub chain_length: usize,
    /// Loads/stores per inner-loop iteration.
    pub mem_ops_per_iteration: usize,
    /// Stride between consecutive memory accesses in bytes (small strides
    /// are cache friendly).
    pub mem_stride: i64,
    /// Size of the touched data region in bytes.
    pub mem_footprint: i64,
    /// `true` for pointer-chasing (`mcf`-style) memory behaviour instead of
    /// strided accesses.
    pub pointer_chasing: bool,
    /// Number of if/else diamonds in each helper body.
    pub diamonds: usize,
    /// `true` if diamond conditions depend on loaded data (poorly
    /// predictable) rather than on the induction variable (predictable).
    pub data_dependent_branches: bool,
    /// Number of cases in a `gcc`/`perlbmk`-style dispatch switch in the main
    /// loop (0 = no switch).
    pub switch_cases: usize,
    /// Fraction of helpers whose call is routed through a library routine
    /// (§4.4 forces the queue to maximum size before such calls).
    pub library_call_fraction: f64,
    /// Number of integer multiplies per inner-loop iteration (`gap`-style
    /// arithmetic pressure).
    pub multiplies_per_iteration: usize,
    /// Iterations of the main outer loop (scales dynamic length).
    pub outer_iterations: i64,
}

/// The profile for one benchmark.
pub fn profile_for(benchmark: Benchmark) -> WorkloadProfile {
    // A base profile; each arm below overrides the characteristic knobs.
    let base = WorkloadProfile {
        seed: 0,
        helper_procedures: 2,
        inner_trip_count: 24,
        ilp_chains: 3,
        chain_length: 3,
        mem_ops_per_iteration: 2,
        mem_stride: 8,
        mem_footprint: 32 * 1024,
        pointer_chasing: false,
        diamonds: 1,
        data_dependent_branches: false,
        switch_cases: 0,
        library_call_fraction: 0.0,
        multiplies_per_iteration: 0,
        outer_iterations: 60,
    };
    match benchmark {
        Benchmark::Gzip => WorkloadProfile {
            seed: 0x67_7a_69_70,
            helper_procedures: 2,
            inner_trip_count: 40,
            ilp_chains: 4,
            chain_length: 3,
            mem_ops_per_iteration: 3,
            mem_stride: 8,
            mem_footprint: 48 * 1024,
            outer_iterations: 45,
            ..base
        },
        Benchmark::Vpr => WorkloadProfile {
            seed: 0x76_70_72,
            helper_procedures: 3,
            inner_trip_count: 24,
            ilp_chains: 3,
            chain_length: 4,
            mem_ops_per_iteration: 2,
            mem_stride: 24,
            mem_footprint: 96 * 1024,
            diamonds: 2,
            data_dependent_branches: true,
            outer_iterations: 50,
            ..base
        },
        Benchmark::Gcc => WorkloadProfile {
            seed: 0x67_63_63,
            helper_procedures: 5,
            inner_trip_count: 8,
            ilp_chains: 2,
            chain_length: 3,
            mem_ops_per_iteration: 2,
            mem_stride: 16,
            mem_footprint: 128 * 1024,
            diamonds: 3,
            data_dependent_branches: true,
            switch_cases: 24,
            library_call_fraction: 0.2,
            outer_iterations: 110,
            ..base
        },
        Benchmark::Mcf => WorkloadProfile {
            seed: 0x6d_63_66,
            helper_procedures: 1,
            inner_trip_count: 32,
            ilp_chains: 1,
            chain_length: 5,
            mem_ops_per_iteration: 4,
            mem_stride: 4096,
            mem_footprint: 4 * 1024 * 1024,
            pointer_chasing: true,
            diamonds: 1,
            data_dependent_branches: true,
            outer_iterations: 140,
            ..base
        },
        Benchmark::Crafty => WorkloadProfile {
            seed: 0x63_72_61,
            helper_procedures: 3,
            inner_trip_count: 16,
            ilp_chains: 5,
            chain_length: 2,
            mem_ops_per_iteration: 1,
            mem_stride: 8,
            mem_footprint: 16 * 1024,
            diamonds: 3,
            data_dependent_branches: true,
            outer_iterations: 70,
            ..base
        },
        Benchmark::Parser => WorkloadProfile {
            seed: 0x70_61_72,
            helper_procedures: 4,
            inner_trip_count: 12,
            ilp_chains: 2,
            chain_length: 3,
            mem_ops_per_iteration: 2,
            mem_stride: 32,
            mem_footprint: 64 * 1024,
            diamonds: 2,
            data_dependent_branches: true,
            library_call_fraction: 0.25,
            outer_iterations: 100,
            ..base
        },
        Benchmark::Perlbmk => WorkloadProfile {
            seed: 0x70_65_72,
            helper_procedures: 4,
            inner_trip_count: 10,
            ilp_chains: 3,
            chain_length: 3,
            mem_ops_per_iteration: 2,
            mem_stride: 16,
            mem_footprint: 64 * 1024,
            diamonds: 2,
            data_dependent_branches: true,
            switch_cases: 16,
            library_call_fraction: 0.25,
            outer_iterations: 100,
            ..base
        },
        Benchmark::Gap => WorkloadProfile {
            seed: 0x67_61_70,
            helper_procedures: 2,
            inner_trip_count: 28,
            ilp_chains: 4,
            chain_length: 3,
            mem_ops_per_iteration: 2,
            mem_stride: 8,
            mem_footprint: 48 * 1024,
            multiplies_per_iteration: 3,
            outer_iterations: 50,
            ..base
        },
        Benchmark::Vortex => WorkloadProfile {
            seed: 0x76_6f_72,
            helper_procedures: 6,
            inner_trip_count: 6,
            ilp_chains: 3,
            chain_length: 3,
            mem_ops_per_iteration: 2,
            mem_stride: 64,
            mem_footprint: 128 * 1024,
            diamonds: 1,
            data_dependent_branches: false,
            library_call_fraction: 0.35,
            outer_iterations: 130,
            ..base
        },
        Benchmark::Bzip2 => WorkloadProfile {
            // "bz2" in ASCII; written ungrouped because a trailing `_32`
            // group reads as a mistyped literal suffix (clippy).
            seed: 0x627a32,
            helper_procedures: 3,
            inner_trip_count: 32,
            ilp_chains: 5,
            chain_length: 4,
            mem_ops_per_iteration: 3,
            mem_stride: 8,
            mem_footprint: 96 * 1024,
            diamonds: 1,
            data_dependent_branches: true,
            multiplies_per_iteration: 2,
            outer_iterations: 40,
            ..base
        },
        Benchmark::Twolf => WorkloadProfile {
            seed: 0x74_77_6f,
            helper_procedures: 3,
            inner_trip_count: 20,
            ilp_chains: 3,
            chain_length: 4,
            mem_ops_per_iteration: 2,
            mem_stride: 40,
            mem_footprint: 80 * 1024,
            diamonds: 2,
            data_dependent_branches: true,
            outer_iterations: 50,
            ..base
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_unique_per_benchmark() {
        let seeds: std::collections::HashSet<_> = Benchmark::ALL
            .iter()
            .map(|b| profile_for(*b).seed)
            .collect();
        assert_eq!(seeds.len(), Benchmark::ALL.len());
    }

    #[test]
    fn characteristic_knobs_follow_the_papers_narrative() {
        let mcf = profile_for(Benchmark::Mcf);
        let vortex = profile_for(Benchmark::Vortex);
        let gcc = profile_for(Benchmark::Gcc);
        let crafty = profile_for(Benchmark::Crafty);
        // mcf is the memory-bound, low-ILP benchmark.
        assert!(mcf.pointer_chasing);
        assert!(mcf.mem_footprint > vortex.mem_footprint);
        assert!(mcf.ilp_chains <= crafty.ilp_chains);
        // vortex is the call-heavy benchmark.
        assert!(
            vortex.helper_procedures
                >= Benchmark::ALL
                    .iter()
                    .map(|b| profile_for(*b).helper_procedures)
                    .max()
                    .unwrap()
        );
        // gcc has the most complex control flow.
        assert!(gcc.switch_cases > 0);
        assert!(gcc.diamonds >= 3);
    }

    #[test]
    fn profiles_are_reasonable() {
        for b in Benchmark::ALL {
            let p = profile_for(b);
            assert!(p.inner_trip_count > 0);
            assert!(p.outer_iterations > 0);
            assert!(p.ilp_chains >= 1);
            assert!(p.chain_length >= 1);
            assert!((0.0..=1.0).contains(&p.library_call_fraction));
        }
    }
}
