//! Runs the whole benchmark suite under every technique and prints a
//! Figure 6 / Figure 8-style comparison table.
//!
//! ```text
//! cargo run --release --example benchmark_suite [scale]
//! ```
//!
//! The optional `scale` argument (default `0.25`) multiplies every
//! benchmark's outer-loop iteration count; `1.0` reproduces the scale used
//! by `repro` and `EXPERIMENTS.md`.

use sdiq::core::{experiments, Experiment, Technique};
use sdiq::workloads::Benchmark;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.25);
    let experiment = Experiment {
        scale,
        ..Experiment::paper()
    };

    println!(
        "running {} benchmarks x {} techniques at scale {scale} ...",
        Benchmark::ALL.len(),
        Technique::all().len()
    );
    let suite = experiment.run_matrix(&Benchmark::ALL, &Technique::all());

    println!();
    println!(
        "{:10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "noop IPC-", "ext IPC-", "abella IPC-", "noop IQdyn", "noop IQstat"
    );
    for benchmark in Benchmark::ALL {
        let noop = suite.comparison(benchmark, Technique::Noop).unwrap();
        let ext = suite.comparison(benchmark, Technique::Extension).unwrap();
        let abella = suite.comparison(benchmark, Technique::Abella).unwrap();
        println!(
            "{:10} {:>9.1}% {:>9.1}% {:>10.1}% {:>9.1}% {:>10.1}%",
            benchmark.name(),
            noop.ipc_loss_percent,
            ext.ipc_loss_percent,
            abella.ipc_loss_percent,
            noop.savings.iq_dynamic_pct,
            noop.savings.iq_static_pct,
        );
    }

    println!();
    println!("suite averages:");
    for technique in Technique::evaluated() {
        let summary = experiments::summarise(&suite, technique);
        println!(
            "  {:10} IPC loss {:>5.1}%   IQ dyn {:>5.1}%   IQ stat {:>5.1}%   RF dyn {:>5.1}%   RF stat {:>5.1}%",
            technique.name(),
            summary.ipc_loss_pct,
            summary.iq_dynamic_pct,
            summary.iq_static_pct,
            summary.rf_dynamic_pct,
            summary.rf_static_pct,
        );
    }
    let overall = experiments::overall_processor_savings(&suite, Technique::Improved, 0.22, 0.11);
    println!();
    println!(
        "overall processor dynamic power saving (Improved, IQ=22%, RF=11% of total): {overall:.1}%"
    );
}
