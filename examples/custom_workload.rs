//! Builds a custom program with the `sdiq-isa` builder API, compiles it with
//! the paper's pass, and compares the annotated and unannotated runs.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The program is a small dot-product-style kernel: a recurrence-bound
//! accumulation loop plus independent per-iteration work — exactly the kind
//! of loop whose issue-queue requirement the paper's cyclic-dependence-set
//! analysis can bound.

use sdiq::compiler::{CompilerPass, PassConfig};
use sdiq::core::{Experiment, Technique};
use sdiq::isa::builder::ProgramBuilder;
use sdiq::isa::reg::int_reg;
use sdiq::isa::Program;

fn build_kernel() -> Program {
    let mut b = ProgramBuilder::new();
    b.name("dotprod-kernel");
    let main = b.procedure("main");
    {
        let p = b.proc_mut(main);
        let entry = p.block();
        let body = p.block();
        let exit = p.block();
        p.with_block(entry, |bb| {
            bb.li(int_reg(1), 0); // induction
            bb.li(int_reg(2), 0); // accumulator (the recurrence)
            bb.li(int_reg(3), 0x2000_0000); // array base
            bb.jump(body);
        });
        p.with_block(body, |bb| {
            // Two loads feeding a multiply, accumulated into r2 (the
            // loop-carried recurrence), plus independent bookkeeping.
            bb.load(int_reg(4), int_reg(3), 0);
            bb.load(int_reg(5), int_reg(3), 8);
            bb.mul(int_reg(6), int_reg(4), int_reg(5));
            bb.add(int_reg(2), int_reg(2), int_reg(6));
            bb.addi(int_reg(7), int_reg(4), 3);
            bb.addi(int_reg(8), int_reg(5), 5);
            bb.addi(int_reg(3), int_reg(3), 16);
            bb.addi(int_reg(1), int_reg(1), 1);
            bb.blt(int_reg(1), 2000, body, exit);
        });
        p.with_block(exit, |bb| {
            bb.ret();
        });
        p.set_entry(entry);
    }
    b.finish(main).expect("kernel is structurally valid")
}

fn main() {
    let program = build_kernel();

    // Show what the compiler pass decides for this kernel.
    let compiled = CompilerPass::new(PassConfig::noop_insertion()).run(&program);
    println!("compiler analysis of {}:", program.name);
    for info in &compiled.loop_requirements {
        println!(
            "  loop headed by {}: recurrence latency {} cycles, window {:?} entries",
            info.header, info.requirement.recurrence_latency, info.requirement.entries
        );
    }
    println!(
        "  {} block(s) annotated, {} special NOOP(s) inserted",
        compiled.stats.annotated_blocks, compiled.stats.hint_noops_inserted
    );
    println!();

    // Run it through the full experiment pipeline.
    let experiment = Experiment::paper();
    let baseline = experiment.run_program(&program, Technique::Baseline);
    let noop = experiment.run_program(&program, Technique::Noop);
    let extension = experiment.run_program(&program, Technique::Extension);

    println!("results (relative to the unmanaged baseline):");
    for report in [&noop, &extension] {
        let cmp = report.compared_to(&baseline);
        println!(
            "  {:10} IPC loss {:>5.2}%   IQ occupancy -{:>4.1}%   IQ dynamic -{:>4.1}%   IQ static -{:>4.1}%",
            report.technique.name(),
            cmp.ipc_loss_percent,
            cmp.iq_occupancy_reduction_percent,
            cmp.savings.iq_dynamic_pct,
            cmp.savings.iq_static_pct,
        );
    }
}
