//! Walks through the paper's two worked analysis examples:
//!
//! * Figure 3 — the pseudo-issue-queue analysis of a basic block (needs 4
//!   entries), and
//! * Figure 4 — the cyclic-dependence-set analysis of a loop whose
//!   instructions issue up to three iterations ahead (needs 15 entries).
//!
//! ```text
//! cargo run --release --example loop_analysis
//! ```

use sdiq::compiler::{analyse_block, analyse_loop_body};
use sdiq::isa::reg::int_reg;
use sdiq::isa::{FuCounts, Instruction, Opcode};

fn figure3_block() -> Vec<Instruction> {
    // a defines r1; b and d depend on a; c depends on b; e depends on d;
    // f depends on b and d — the dependence shape of Figure 3.
    vec![
        Instruction::ri(Opcode::Li, int_reg(1), 7),
        Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1),
        Instruction::rri(Opcode::Addi, int_reg(3), int_reg(2), 1),
        Instruction::rri(Opcode::Addi, int_reg(4), int_reg(1), 2),
        Instruction::rri(Opcode::Addi, int_reg(5), int_reg(4), 1),
        Instruction::rrr(Opcode::Add, int_reg(6), int_reg(2), int_reg(4)),
    ]
}

fn figure4_loop_body() -> Vec<Instruction> {
    // a = a + 1; b = a + 1; c = b + 1; d = b + 1; e = d + 1; f = c + 1.
    vec![
        Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1),
        Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1),
        Instruction::rri(Opcode::Addi, int_reg(3), int_reg(2), 1),
        Instruction::rri(Opcode::Addi, int_reg(4), int_reg(2), 1),
        Instruction::rri(Opcode::Addi, int_reg(5), int_reg(4), 1),
        Instruction::rri(Opcode::Addi, int_reg(6), int_reg(3), 1),
    ]
}

fn main() {
    println!("== Figure 3: pseudo issue queue analysis of a basic block ==");
    let block = figure3_block();
    for (i, inst) in block.iter().enumerate() {
        println!("  {}: {}", (b'a' + i as u8) as char, inst);
    }
    let requirement = analyse_block(&block, 8, &FuCounts::hpca2005());
    println!(
        "  → needs {} issue-queue entries, drains in {} cycles",
        requirement.entries, requirement.cycles
    );
    println!();

    println!("== Figure 4: cyclic dependence set analysis of a loop ==");
    let body = figure4_loop_body();
    for (i, inst) in body.iter().enumerate() {
        println!("  {}: {}", (b'a' + i as u8) as char, inst);
    }
    let requirement = analyse_loop_body(&body, 80);
    println!(
        "  → critical recurrence latency {} cycle(s)",
        requirement.recurrence_latency
    );
    println!("  → per-instruction iteration offsets (relative to `a`):");
    for (i, offset) in requirement.iteration_offsets.iter().enumerate() {
        println!(
            "      {} issues with a from iteration i+{}",
            (b'a' + i as u8) as char,
            offset
        );
    }
    println!(
        "  → needs {} issue-queue entries for pipeline-parallel execution",
        requirement.entries.expect("bounded loop")
    );
}
