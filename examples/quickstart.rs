//! Quickstart: run the paper's technique end to end on one benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the `gzip` analogue, runs the unmanaged baseline and the NOOP
//! technique through the compiler pass → functional executor → cycle-level
//! simulator → power model, and prints the headline comparison the paper
//! reports (IPC loss, issue-queue occupancy reduction, dynamic/static power
//! savings).

use sdiq::core::{Experiment, Technique};
use sdiq::workloads::Benchmark;

fn main() {
    let experiment = Experiment::quick();
    let benchmark = Benchmark::Gzip;

    println!("running {benchmark} under the baseline and the NOOP technique ...");
    let baseline = experiment.run(benchmark, Technique::Baseline);
    let noop = experiment.run(benchmark, Technique::Noop);
    let comparison = noop.compared_to(&baseline);

    println!();
    println!("benchmark                 : {}", baseline.workload);
    println!("baseline IPC              : {:.2}", baseline.ipc());
    println!("NOOP technique IPC        : {:.2}", noop.ipc());
    println!(
        "IPC loss                  : {:.2}%",
        comparison.ipc_loss_percent
    );
    println!(
        "IQ occupancy reduction    : {:.1}%  ({:.1} → {:.1} entries)",
        comparison.iq_occupancy_reduction_percent,
        baseline.stats.avg_iq_occupancy(),
        noop.stats.avg_iq_occupancy()
    );
    println!(
        "IQ dynamic power saving   : {:.1}%",
        comparison.savings.iq_dynamic_pct
    );
    println!(
        "IQ static power saving    : {:.1}%",
        comparison.savings.iq_static_pct
    );
    println!(
        "int RF dynamic power save : {:.1}%",
        comparison.savings.rf_dynamic_pct
    );
    println!(
        "int RF static power save  : {:.1}%",
        comparison.savings.rf_static_pct
    );
    println!(
        "special NOOPs inserted    : {} static, {} dynamic",
        noop.hint_noops_inserted, noop.stats.committed_hints
    );
}
