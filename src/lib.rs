//! # sdiq — Software Directed Issue Queue Power Reduction
//!
//! This is the umbrella crate of the reproduction of *"Software Directed
//! Issue Queue Power Reduction"* (Jones, O'Boyle, Abella, González — HPCA
//! 2005). It re-exports every sub-crate of the workspace so that examples,
//! integration tests and downstream users only need a single dependency.
//!
//! The workspace implements, from scratch:
//!
//! * a synthetic RISC-style ISA and functional executor ([`isa`]),
//! * a compiler IR with CFG / dominator / natural-loop / DDG analyses ([`ir`]),
//! * the paper's compiler pass: pseudo-issue-queue DAG analysis, loop cyclic
//!   dependence set analysis, special-NOOP insertion and instruction tagging
//!   ([`compiler`]),
//! * a cycle-level out-of-order superscalar simulator with a banked,
//!   non-collapsible issue queue extended with the `new_head` pointer and
//!   `max_new_range` dispatch limiting ([`sim`]),
//! * a Wattch-style activity-based power model ([`power`]),
//! * a deterministic synthetic SPECint2000-analogue workload generator
//!   ([`workloads`]), and
//! * the experiment layer that regenerates every table and figure of the
//!   paper's evaluation ([`core`]).
//!
//! # Quickstart
//!
//! ```
//! use sdiq::core::{Experiment, Technique};
//! use sdiq::workloads::Benchmark;
//!
//! // Run the paper's NOOP technique on the (scaled-down) gzip analogue.
//! let experiment = Experiment::quick();
//! let baseline = experiment.run(Benchmark::Gzip, Technique::Baseline);
//! let noop = experiment.run(Benchmark::Gzip, Technique::Noop);
//! let comparison = noop.compared_to(&baseline);
//! assert!(comparison.ipc_loss_percent < 50.0);
//! assert!(comparison.savings.iq_dynamic_pct > 0.0);
//! ```

pub use sdiq_compiler as compiler;
pub use sdiq_core as core;
pub use sdiq_ir as ir;
pub use sdiq_isa as isa;
pub use sdiq_power as power;
pub use sdiq_sim as sim;
pub use sdiq_verify as verify;
pub use sdiq_workloads as workloads;
