//! Table 1 — the simulated processor configuration must match the paper.

use sdiq::core::experiments::table1;
use sdiq::sim::SimConfig;

#[test]
fn simulator_configuration_matches_table1() {
    let c = SimConfig::hpca2005();

    // Fetch, decode and commit width: 8 instructions.
    assert_eq!(c.widths.pipeline_width, 8);
    // Branch predictor: hybrid 2K gshare, 2K bimodal, 1K selector.
    assert_eq!(c.branch.gshare_entries, 2048);
    assert_eq!(c.branch.bimodal_entries, 2048);
    assert_eq!(c.branch.selector_entries, 1024);
    // BTB: 2048 entries, 4-way.
    assert_eq!(c.branch.btb_entries, 2048);
    assert_eq!(c.branch.btb_ways, 4);
    // L1 Icache: 64KB, 2-way, 32B line, 1 cycle hit.
    assert_eq!(c.l1i.size_bytes, 64 * 1024);
    assert_eq!(c.l1i.ways, 2);
    assert_eq!(c.l1i.line_bytes, 32);
    assert_eq!(c.l1i.hit_latency, 1);
    // L1 Dcache: 64KB, 4-way, 32B line, 2 cycles hit.
    assert_eq!(c.l1d.size_bytes, 64 * 1024);
    assert_eq!(c.l1d.ways, 4);
    assert_eq!(c.l1d.line_bytes, 32);
    assert_eq!(c.l1d.hit_latency, 2);
    // Unified L2: 512KB, 8-way, 64B line, 10 cycles hit, 50 cycles miss.
    assert_eq!(c.l2.size_bytes, 512 * 1024);
    assert_eq!(c.l2.ways, 8);
    assert_eq!(c.l2.line_bytes, 64);
    assert_eq!(c.l2.hit_latency, 10);
    assert_eq!(c.memory_latency, 50);
    // ROB 128 entries, issue queue 80 entries.
    assert_eq!(c.widths.rob_capacity, 128);
    assert_eq!(c.widths.iq_capacity, 80);
    assert_eq!(c.iq.entries, 80);
    // Register files: 112 entries each, 14 banks of 8.
    assert_eq!(c.int_rf.regs_per_class, 112);
    assert_eq!(c.int_rf.bank_size, 8);
    assert_eq!(c.int_rf.banks(), 14);
    assert_eq!(c.fp_rf.regs_per_class, 112);
    assert_eq!(c.fp_rf.banks(), 14);
    // Functional units: 6 int ALU (1 cycle), 3 int mul (3 cycles),
    // 4 FP ALU (2 cycles), 2 FP mult/div (4 / 12 cycles).
    assert_eq!(c.fu_counts.int_alu, 6);
    assert_eq!(c.fu_counts.int_mul, 3);
    assert_eq!(c.fu_counts.fp_alu, 4);
    assert_eq!(c.fu_counts.fp_mul_div, 2);
    assert_eq!(sdiq::isa::Opcode::Add.latency(), 1);
    assert_eq!(sdiq::isa::Opcode::Mul.latency(), 3);
    assert_eq!(sdiq::isa::Opcode::FAdd.latency(), 2);
    assert_eq!(sdiq::isa::Opcode::FMul.latency(), 4);
    assert_eq!(sdiq::isa::Opcode::FDiv.latency(), 12);
}

#[test]
fn rendered_table_contains_every_row_of_the_paper() {
    let text = table1(&SimConfig::hpca2005());
    for needle in [
        "8 instructions",
        "Hybrid 2K gshare, 2K bimodal, 1K selector",
        "2048 entries, 4-way",
        "64KB, 2-way, 32B line, 1 cycle hit",
        "64KB, 4-way, 32B line, 2 cycles hit",
        "512KB, 8-way, 64B line, 10 cycles hit, 50 cycles miss",
        "128 entries",
        "80 entries",
        "112 entries",
        "6 ALU (1 cycle), 3 Mul (3 cycles)",
        "4 ALU (2 cycles), 2 MultDiv (4 cycles mult, 12 cycles div)",
    ] {
        assert!(
            text.contains(needle),
            "Table 1 text missing: {needle}\n{text}"
        );
    }
}
