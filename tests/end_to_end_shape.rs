//! Cross-crate integration tests: the qualitative *shape* of the paper's
//! results must hold on a reduced-scale experiment matrix.
//!
//! These are the claims the paper's evaluation rests on:
//!
//! 1. the software technique saves more issue-queue dynamic power than
//!    Folegnani-style `nonEmpty` wakeup gating alone,
//! 2. it reduces issue-queue occupancy and turns banks off (static power),
//! 3. the register file also gets cheaper because fewer instructions are in
//!    flight,
//! 4. the Extension (tagging) variant loses less IPC than the NOOP variant,
//!    and Improved loses no more than Extension,
//! 5. every technique commits exactly the same real instructions as the
//!    baseline (the special NOOPs change nothing architecturally).

use sdiq::core::{experiments, Experiment, Technique};
use sdiq::workloads::Benchmark;

fn suite() -> sdiq::core::Suite {
    let experiment = Experiment {
        scale: 0.12,
        ..Experiment::paper()
    };
    experiment.run_matrix(
        &[Benchmark::Gzip, Benchmark::Crafty, Benchmark::Mcf],
        &Technique::all(),
    )
}

#[test]
fn software_resizing_beats_wakeup_gating_alone_and_preserves_work() {
    let suite = suite();

    for benchmark in [Benchmark::Gzip, Benchmark::Crafty, Benchmark::Mcf] {
        let baseline = suite.get(benchmark, Technique::Baseline).unwrap();
        for technique in Technique::evaluated() {
            let run = suite.get(benchmark, technique).unwrap();
            // 5. identical architectural work.
            assert_eq!(
                run.stats.committed, baseline.stats.committed,
                "{benchmark}/{technique}: committed instructions must match the baseline"
            );
            let cmp = suite.comparison(benchmark, technique).unwrap();
            // Savings are sane percentages.
            assert!(cmp.savings.iq_dynamic_pct <= 100.0);
            assert!(cmp.savings.iq_static_pct <= 100.0);
            assert!(
                cmp.ipc_loss_percent < 35.0,
                "{benchmark}/{technique} pathological IPC loss"
            );
        }

        // 1. NOOP beats nonEmpty on dynamic power.
        let nonempty = suite.comparison(benchmark, Technique::NonEmpty).unwrap();
        let noop = suite.comparison(benchmark, Technique::Noop).unwrap();
        assert!(
            noop.savings.iq_dynamic_pct > nonempty.savings.iq_dynamic_pct,
            "{benchmark}: noop {:.1}% should beat nonEmpty {:.1}%",
            noop.savings.iq_dynamic_pct,
            nonempty.savings.iq_dynamic_pct
        );

        // 2. occupancy reduction and bank gating.
        assert!(noop.iq_occupancy_reduction_percent > 0.0);
        assert!(noop.savings.iq_static_pct > 0.0);

        // 3. register-file savings follow from fewer in-flight instructions.
        assert!(noop.savings.rf_static_pct > 0.0);
        assert!(noop.in_flight_reduction_percent > 0.0);
    }
}

#[test]
fn extension_and_improved_reduce_the_ipc_cost_of_the_noop_scheme() {
    let suite = suite();
    let mut noop_total = 0.0;
    let mut extension_total = 0.0;
    let mut improved_total = 0.0;
    for benchmark in [Benchmark::Gzip, Benchmark::Crafty, Benchmark::Mcf] {
        noop_total += suite
            .comparison(benchmark, Technique::Noop)
            .unwrap()
            .ipc_loss_percent;
        extension_total += suite
            .comparison(benchmark, Technique::Extension)
            .unwrap()
            .ipc_loss_percent;
        improved_total += suite
            .comparison(benchmark, Technique::Improved)
            .unwrap()
            .ipc_loss_percent;
    }
    // 4. Extension (no NOOP overhead) ≤ NOOP; Improved ≤ Extension (within a
    // small tolerance for run-to-run noise on these short workloads).
    assert!(
        extension_total <= noop_total + 0.5,
        "extension {extension_total:.2} vs noop {noop_total:.2}"
    );
    assert!(
        improved_total <= extension_total + 0.5,
        "improved {improved_total:.2} vs extension {extension_total:.2}"
    );
}

#[test]
fn figure_data_is_complete_and_consistent() {
    let suite = suite();
    let f8 = experiments::figure8(&suite);
    assert_eq!(f8.dynamic.len(), 3);
    for series in &f8.dynamic {
        assert_eq!(series.points.len(), 3, "one point per benchmark");
        assert!(series.average.is_finite());
    }
    let f10 = experiments::figure10(&suite);
    assert_eq!(f10.len(), 4);
    let summary = experiments::summarise(&suite, Technique::Noop);
    assert!(summary.iq_dynamic_pct > summary.rf_dynamic_pct.min(100.0) - 100.0);
    let overall = experiments::overall_processor_savings(&suite, Technique::Noop, 0.22, 0.11);
    assert!(overall > 0.0 && overall < 40.0);
}
