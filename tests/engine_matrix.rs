//! Integration tests for the experiment job engine, the shared artifact
//! cache and suite persistence — the hard guarantees of the engine layer:
//!
//! 1. a parallel matrix run is **bit-identical** to a serial one,
//! 2. each (benchmark, scale) program is built **exactly once** per sweep
//!    and each (program, pass-config) compiled exactly once,
//! 3. a saved suite reloads bit-identically and seeds a later run so only
//!    missing cells are recomputed,
//! 4. the D-cache activity counters are wired to the cache hierarchy (the
//!    memory-bound `mcf` analogue must show real traffic).

use sdiq::core::{
    persist, shard_of, ArtifactCache, CellSink, Experiment, Matrix, Sweep, Technique,
};
use sdiq::workloads::Benchmark;
use std::collections::HashMap;

fn tiny_experiment() -> Experiment {
    Experiment {
        scale: 0.05,
        ..Experiment::paper()
    }
}

const BENCHMARKS: [Benchmark; 3] = [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Vortex];
const TECHNIQUES: [Technique; 4] = [
    Technique::Baseline,
    Technique::Noop,
    Technique::Extension,
    Technique::Abella,
];

fn swept_matrix(experiment: &Experiment) -> Matrix<'_> {
    Matrix::new(experiment)
        .benchmarks(&BENCHMARKS)
        .techniques(&TECHNIQUES)
        .sweep_iq_entries(&[48])
}

#[test]
fn parallel_engine_is_bit_identical_to_a_serial_run() {
    let experiment = tiny_experiment();
    let serial = swept_matrix(&experiment).jobs(1).run();
    let parallel = swept_matrix(&experiment).jobs(4).run();

    // Full structural equality first: every cell of every sweep point.
    assert_eq!(serial, parallel, "parallel sweep must be bit-identical");

    // And spell the core of the guarantee out per cell, so a future
    // violation names the counter that diverged.
    for (point, (variant, suite)) in serial.iter().enumerate() {
        let other = parallel.suite(point);
        for benchmark in BENCHMARKS {
            for technique in TECHNIQUES {
                let a = suite.get(benchmark, technique).expect("serial cell");
                let b = other.get(benchmark, technique).expect("parallel cell");
                assert_eq!(
                    a.stats, b.stats,
                    "{}/{benchmark}/{technique}: ActivityStats must be bit-identical",
                    variant.label
                );
                assert_eq!(a.power, b.power);
                assert_eq!(a.compile, b.compile);
                assert_eq!(a.adaptive_resizes, b.adaptive_resizes);
            }
        }
    }
}

#[test]
fn artifacts_are_built_exactly_once_per_unique_key() {
    let experiment = tiny_experiment();
    let cache = ArtifactCache::new();
    let matrix = swept_matrix(&experiment).jobs(3);
    let sweep = matrix.run_with(&cache, &HashMap::new());
    assert_eq!(sweep.len(), 2, "base + iq48");

    // Both variants run at the same scale, so one program per benchmark
    // serves all 2 × 4 cells of its row.
    assert_eq!(
        cache.program_builds(),
        BENCHMARKS.len() as u64,
        "one build per (benchmark, scale)"
    );
    // Software techniques: Noop and Extension have distinct pass configs,
    // and the iq48 variant retargets the machine widths, which is a new
    // pass config — 2 passes × 2 variants × 3 benchmarks.
    assert_eq!(
        cache.compile_runs(),
        (2 * 2 * BENCHMARKS.len()) as u64,
        "one compile per (program, pass-config)"
    );

    // Re-running the same matrix against the same cache computes nothing.
    let again = matrix.run_with(&cache, &HashMap::new());
    assert_eq!(cache.program_builds(), BENCHMARKS.len() as u64);
    assert_eq!(cache.compile_runs(), (2 * 2 * BENCHMARKS.len()) as u64);
    assert_eq!(sweep, again, "cache reuse does not change results");
}

#[test]
fn saved_cells_reload_bit_identically_and_seed_partial_reruns() {
    let experiment = tiny_experiment();
    let narrow = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip, Benchmark::Mcf])
        .techniques(&[Technique::Baseline, Technique::Noop]);
    let sweep = narrow.run();

    // Round trip through the JSON text.
    let saved = persist::save_cells(&narrow.collect_cells(&sweep));
    let loaded = persist::load_cells(&saved).expect("save file parses");
    assert_eq!(loaded.len(), 4);
    for (key, report) in narrow.collect_cells(&sweep) {
        assert_eq!(loaded.get(&key), Some(&report), "{key} must round-trip");
    }

    // Seeding a *wider* matrix with the loaded cells re-runs only the new
    // technique column: the seeded cells need no program build at all, the
    // new NonEmpty cells share one build per benchmark and compile nothing.
    let wider = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip, Benchmark::Mcf])
        .techniques(&[Technique::Baseline, Technique::Noop, Technique::NonEmpty]);
    let cache = ArtifactCache::new();
    let wider_sweep = wider.run_with(&cache, &loaded);
    assert_eq!(cache.program_builds(), 2, "only the missing cells ran");
    assert_eq!(cache.compile_runs(), 0, "no software cell was missing");

    let suite = wider_sweep.suite(0);
    for benchmark in [Benchmark::Gzip, Benchmark::Mcf] {
        // Reused cells are byte-for-byte the originals.
        for technique in [Technique::Baseline, Technique::Noop] {
            assert_eq!(
                suite.get(benchmark, technique),
                sweep.suite(0).get(benchmark, technique),
                "{benchmark}/{technique} must come from the seed verbatim"
            );
        }
        // And the freshly computed cells are complete and consistent.
        let nonempty = suite.get(benchmark, Technique::NonEmpty).expect("new cell");
        let baseline = suite.get(benchmark, Technique::Baseline).unwrap();
        assert_eq!(nonempty.stats.cycles, baseline.stats.cycles);
    }
}

#[test]
fn loading_under_a_different_configuration_recomputes_everything() {
    let experiment = tiny_experiment();
    let matrix = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip])
        .techniques(&[Technique::Baseline]);
    let cells = matrix.collect_cells(&matrix.run());

    // The same axes at a different scale must not alias into the saved
    // cells: the key fingerprints the configuration.
    let other = Experiment {
        scale: 0.07,
        ..Experiment::paper()
    };
    let other_matrix = Matrix::new(&other)
        .benchmarks(&[Benchmark::Gzip])
        .techniques(&[Technique::Baseline]);
    let cache = ArtifactCache::new();
    let seed: HashMap<_, _> = cells.into_iter().collect();
    let sweep = other_matrix.run_with(&cache, &seed);
    assert_eq!(cache.program_builds(), 1, "stale seed must be ignored");
    let report = sweep.suite(0).get(Benchmark::Gzip, Technique::Baseline);
    assert_eq!(report.unwrap().stats.iq_total_entries, 80);
}

#[test]
fn corrupted_seed_cells_are_recomputed_not_misfiled() {
    let experiment = tiny_experiment();
    let matrix = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip])
        .techniques(&[Technique::Baseline, Technique::Noop]);
    let sweep = matrix.run();
    let keys = matrix.cell_keys();
    let mut cells: HashMap<_, _> = matrix.collect_cells(&sweep).into_iter().collect();

    // Corrupt the save: file the baseline report under the noop cell's key
    // (cell order is technique-minor, so keys[1] is the noop cell).
    let baseline_report = cells[&keys[0]].clone();
    cells.insert(keys[1].clone(), baseline_report);

    // The engine's accounting sees through the corruption: the key is
    // present but the report fails the integrity check.
    assert_eq!(matrix.missing_cells(&cells), 1);

    let cache = ArtifactCache::new();
    let suite = matrix.run_with(&cache, &cells).into_suite();
    // The mismatched seed was ignored and the noop cell recomputed: both
    // cells are present and correct, nothing got mis-slotted.
    assert_eq!(suite.len(), 2);
    assert_eq!(
        suite.get(Benchmark::Gzip, Technique::Noop),
        sweep.suite(0).get(Benchmark::Gzip, Technique::Noop),
        "noop cell must be recomputed, not overwritten by the corrupt seed"
    );
    assert_eq!(cache.program_builds(), 1, "the recomputation really ran");
}

#[test]
fn run_and_the_engine_agree_on_non_paper_machines() {
    // `Experiment::run` and the matrix engine must compile software
    // techniques for the *same* machine — the experiment's own, not a
    // hard-coded paper configuration.
    let mut experiment = tiny_experiment();
    experiment.sim_config.iq.entries = 48;
    experiment.sim_config.widths.iq_capacity = 48;
    let direct = experiment.run(Benchmark::Gzip, Technique::Noop);
    let suite = experiment.run_matrix(&[Benchmark::Gzip], &[Technique::Noop]);
    let engine = suite.get(Benchmark::Gzip, Technique::Noop).unwrap();
    assert_eq!(direct.stats, engine.stats);
    assert_eq!(direct.hint_noops_inserted, engine.hint_noops_inserted);
    assert_eq!(direct.stats.iq_total_entries, 48);
}

#[test]
fn mcf_analogue_exercises_the_dcache_counters() {
    let experiment = tiny_experiment();
    let report = experiment.run(Benchmark::Mcf, Technique::Baseline);
    let stats = &report.stats;
    assert!(
        stats.dcache_accesses > 0,
        "mcf analogue must access the D-cache"
    );
    assert!(
        stats.dcache_misses > 0,
        "pointer-chasing mcf analogue must miss in the D-cache"
    );
    assert!(stats.dcache_misses <= stats.dcache_accesses);
    // The wired counters agree with the loads/stores the trace commits: a
    // committed load or store accesses the D-cache exactly once at issue.
    assert!(
        stats.dcache_accesses >= stats.dcache_misses,
        "hierarchy counters are consistent"
    );
    // The memory-bound analogue should miss noticeably more than the
    // cache-friendly gzip one.
    let gzip = experiment.run(Benchmark::Gzip, Technique::Baseline);
    let mcf_rate = stats.dcache_miss_rate();
    let gzip_rate = gzip.stats.dcache_miss_rate();
    assert!(
        mcf_rate > gzip_rate,
        "mcf miss rate {mcf_rate:.4} should exceed gzip's {gzip_rate:.4}"
    );
}

#[test]
fn shards_partition_the_cell_space_and_merge_bit_identically() {
    let experiment = tiny_experiment();
    let serial = swept_matrix(&experiment);
    let all_keys = serial.cell_keys();
    let serial_sweep = serial.run();
    let serial_cells = serial.collect_cells(&serial_sweep);

    const SHARDS: usize = 3;
    let mut merged = std::collections::BTreeMap::new();
    let mut owned_counts = Vec::new();
    for index in 0..SHARDS {
        let shard = swept_matrix(&experiment).shard(index, SHARDS);
        let keys = shard.cell_keys();
        // Every owned key really belongs to this shard — the partition is
        // a pure function of the key.
        for key in &keys {
            assert_eq!(shard_of(key, SHARDS), index, "{key}");
        }
        owned_counts.push(keys.len());
        let cells = shard.collect_cells(&shard.run_with(&ArtifactCache::new(), &HashMap::new()));
        assert_eq!(cells.len(), keys.len(), "shard computes all its cells");
        for (key, report) in cells {
            assert!(
                merged.insert(key.clone(), report).is_none(),
                "{key}: shards must be disjoint"
            );
        }
    }
    // The shards partition the space: disjoint (asserted above), complete,
    // and cell-for-cell bit-identical to the serial run.
    assert_eq!(owned_counts.iter().sum::<usize>(), all_keys.len());
    assert_eq!(merged, serial_cells, "merged shards == serial run");

    // Re-assembling a sweep from the merged cells computes nothing and is
    // bit-identical to the serial sweep.
    let cache = ArtifactCache::new();
    let seed: HashMap<_, _> = merged.into_iter().collect();
    assert_eq!(serial.missing_cells(&seed), 0);
    let assembled = serial.run_with(&cache, &seed);
    assert_eq!(assembled, serial_sweep, "merged sweep == serial sweep");
    assert_eq!(cache.program_builds(), 0, "assembly is pure merge");
}

#[test]
fn checkpoint_resume_recomputes_only_the_lost_cells() {
    let experiment = tiny_experiment();
    let matrix = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip, Benchmark::Mcf])
        .techniques(&[Technique::Baseline, Technique::Noop, Technique::Abella]);
    let reference = matrix.run();

    // First run streams every completed cell into a checkpoint file.
    let dir = std::env::temp_dir().join(format!("sdiq-resume-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.ckpt");
    let _ = std::fs::remove_file(&path);
    let writer = persist::CheckpointWriter::append_to(&path).unwrap();
    let first = matrix.run_with_sink(&ArtifactCache::new(), &HashMap::new(), Some(&writer));
    drop(writer);
    assert_eq!(first, reference);

    // Simulate a kill mid-append: tear the final checkpoint line.
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 1 + 6, "header + one line per cell");
    std::fs::write(&path, &text[..text.len() - 25]).unwrap();

    // Resume: the torn cell (and only it) is missing and recomputed; the
    // resumed sweep is bit-identical to the uninterrupted one.
    let seed = persist::load_cells_any(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(seed.len(), 5, "the torn line lost exactly one cell");
    assert_eq!(matrix.missing_cells(&seed), 1);
    let cache = ArtifactCache::new();
    let resumed = matrix.run_with(&cache, &seed);
    assert_eq!(resumed, reference, "resume is bit-identical");
    assert_eq!(
        cache.program_builds(),
        1,
        "only the lost cell was recomputed"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn sink_sees_computed_cells_only() {
    struct Recorder(std::sync::Mutex<Vec<String>>);
    impl CellSink for Recorder {
        fn cell_complete(&self, key: &str, _report: &sdiq::core::RunReport) {
            self.0.lock().unwrap().push(key.to_string());
        }
    }

    let experiment = tiny_experiment();
    let matrix = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip])
        .techniques(&[Technique::Baseline, Technique::Noop]);
    let recorder = Recorder(std::sync::Mutex::new(Vec::new()));
    let sweep = matrix.run_with_sink(&ArtifactCache::new(), &HashMap::new(), Some(&recorder));
    {
        let mut seen = recorder.0.lock().unwrap().clone();
        seen.sort();
        let mut expected = matrix.cell_keys();
        expected.sort();
        assert_eq!(seen, expected, "every computed cell reaches the sink once");
    }

    // A fully seeded re-run computes nothing, so the sink stays silent.
    let recorder = Recorder(std::sync::Mutex::new(Vec::new()));
    let seed: HashMap<_, _> = matrix.collect_cells(&sweep).into_iter().collect();
    let again = matrix.run_with_sink(&ArtifactCache::new(), &seed, Some(&recorder));
    assert_eq!(again, sweep);
    assert!(
        recorder.0.lock().unwrap().is_empty(),
        "seeded cells are already durable — not re-reported"
    );
}

#[test]
fn negative_savings_survive_persist_round_trips() {
    // A technique that is *worse* than its baseline must come back from a
    // save file still reporting negative savings — pct_saving's old
    // zero-baseline convention silently flattened such cases to "no
    // savings" (see sdiq_power::pct_saving).
    let experiment = tiny_experiment();
    let frugal = experiment.run(Benchmark::Gzip, Technique::Abella);
    let spender = experiment.run(Benchmark::Gzip, Technique::Baseline);
    assert!(
        spender.power.iq.dynamic > frugal.power.iq.dynamic,
        "the unmanaged baseline burns more IQ power than the gated run"
    );
    // Treat the frugal run as the reference: the spender shows negative
    // savings.
    let before = spender.compared_to(&frugal);
    assert!(before.savings.iq_dynamic_pct < 0.0);

    let mut cells = std::collections::BTreeMap::new();
    cells.insert("frugal".to_string(), frugal);
    cells.insert("spender".to_string(), spender);
    let loaded = persist::load_cells(&persist::save_cells(&cells)).unwrap();
    let after = loaded["spender"].compared_to(&loaded["frugal"]);
    assert_eq!(
        after.savings, before.savings,
        "savings recomputed from reloaded cells are bit-identical"
    );
    assert!(after.savings.iq_dynamic_pct < 0.0, "still negative");
}

/// Forward compatibility across the registry refactor: a save file written
/// by the pre-registry binary (checked in under `tests/fixtures/`, produced
/// by `repro --scale 0.02 --benchmarks gzip,mcf --techniques
/// baseline,noop,abella --save`) must seed the same matrix today with zero
/// recomputation — every key matches, every report passes the integrity
/// check, nothing is rebuilt.
#[test]
fn pre_registry_save_fixture_loads_and_recomputes_nothing() {
    let saved = include_str!("fixtures/pre_registry_save.json");
    let loaded = persist::load_cells(saved).expect("pre-registry save file parses");
    assert_eq!(loaded.len(), 6, "2 benchmarks x 3 techniques");

    let experiment = Experiment {
        scale: 0.02,
        ..Experiment::paper()
    };
    let matrix = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip, Benchmark::Mcf])
        .techniques(&[Technique::Baseline, Technique::Noop, Technique::Abella]);
    assert_eq!(
        matrix.missing_cells(&loaded),
        0,
        "registry cell keys must match the pre-registry fixture exactly"
    );

    let cache = ArtifactCache::new();
    let sweep = matrix.run_with(&cache, &loaded);
    assert_eq!(cache.program_builds(), 0, "nothing was recomputed");
    assert_eq!(cache.compile_runs(), 0, "nothing was recompiled");
    for (key, report) in matrix.collect_cells(&sweep) {
        assert_eq!(
            loaded.get(&key),
            Some(&report),
            "{key} must come from the fixture verbatim"
        );
    }
}

/// The registry's acceptance claim: a ninth technique is one descriptor
/// registration away from the full engine — matrix runs, save/load
/// round-trips and the lint walk all pick it up with no other change.
#[test]
fn a_registered_toy_technique_runs_the_full_matrix_saveload_and_lint() {
    use sdiq::compiler::{CompilerPass, PassConfig};
    use sdiq::core::{TechniqueRegistry, TechniqueSpec};
    use sdiq::power::WakeupScheme;
    use sdiq::sim::ResizePolicy;

    // One registration call. The shape deliberately composes existing
    // machinery (the low-energy pass on a fixed-size queue) rather than a
    // copy of a built-in spec.
    let toy = TechniqueRegistry::register(TechniqueSpec {
        name: "test-toy-matrix",
        pass_config: Some(PassConfig::low_energy_encoding()),
        resize_policy: ResizePolicy::Fixed,
        wakeup_scheme: WakeupScheme::NonEmptyOnly,
        bank_gating: false,
        tracks_low_energy: true,
    })
    .expect("unique name registers");
    assert_eq!(Technique::from_name("test-toy-matrix"), Some(toy));

    // Full matrix, parallel, alongside a built-in.
    let experiment = tiny_experiment();
    let matrix = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip])
        .techniques(&[Technique::Baseline, toy]);
    let sweep = matrix.run();
    let suite = sweep.suite(0);
    let report = suite.get(Benchmark::Gzip, toy).expect("toy cell ran");
    let baseline = suite.get(Benchmark::Gzip, Technique::Baseline).unwrap();
    assert_eq!(
        report.stats.committed, baseline.stats.committed,
        "fixed-queue toy technique commits the baseline's work"
    );
    assert!(
        report.stats.committed_low_energy > 0,
        "the toy technique's pass really ran"
    );

    // Save/load round-trip through the cell-key and JSON codecs.
    let cells = matrix.collect_cells(&sweep);
    assert!(cells.keys().any(|k| k.contains("|test-toy-matrix|")));
    let loaded = persist::load_cells(&persist::save_cells(&cells)).unwrap();
    assert_eq!(matrix.missing_cells(&loaded), 0);
    for (key, report) in &cells {
        assert_eq!(loaded.get(key), Some(report), "{key} must round-trip");
    }

    // The lint walk's per-technique compile check (what `repro lint` runs).
    let program = Benchmark::Gzip.build_scaled(experiment.scale);
    let pass = toy
        .pass_config_for(
            experiment.sim_config.widths,
            experiment.sim_config.fu_counts,
        )
        .expect("toy technique declares a pass");
    let compiled = CompilerPass::new(pass)
        .run_verified(&program, Box::new(sdiq::verify::StandardVerifier))
        .expect("inter-pass verification is clean");
    let diags = sdiq::verify::verify_compiled(&compiled);
    assert!(
        !diags
            .iter()
            .any(|d| d.severity == sdiq::verify::Severity::Error),
        "lint finds no errors in the toy technique's compile: {diags:?}"
    );
}

#[test]
fn sweep_sensitivity_reports_every_variant() {
    let experiment = tiny_experiment();
    let sweep: Sweep = Matrix::new(&experiment)
        .benchmarks(&[Benchmark::Gzip])
        .techniques(&[Technique::Baseline, Technique::Noop])
        .sweep_iq_entries(&[48, 32])
        .run();
    let rows = sdiq::core::sweep_sensitivity(&sweep, &[Technique::Noop]);
    assert_eq!(rows.len(), 3, "base, iq48, iq32");
    assert_eq!(rows[0].variant, "base");
    assert_eq!(rows[1].iq_entries, 48);
    assert_eq!(rows[2].iq_entries, 32);
    for row in &rows {
        assert!(row.summary.iq_dynamic_pct.is_finite());
    }
    let rendered = sdiq::core::render_sweep_sensitivity(&rows);
    assert!(rendered.contains("variant base"));
    assert!(rendered.contains("variant iq32"));
}
