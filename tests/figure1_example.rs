//! Figure 1 / §2 — the paper's worked example.
//!
//! A basic block of six instructions (`a`..`f`) where `c`,`d` depend on
//! `a`,`b` and `e`,`f` depend on `c`,`d`. Limiting the issue queue so that
//! only two instructions are resident at a time does not slow the block
//! down (the dependent instructions could not have issued earlier anyway)
//! but causes far fewer wakeups — the principle behind the whole technique.

use sdiq::isa::builder::ProgramBuilder;
use sdiq::isa::reg::int_reg;
use sdiq::isa::{Executor, Instruction, Program};
use sdiq::sim::{ResizePolicy, SimConfig, Simulator};

/// Builds the Figure 1 block, repeated `reps` times. When `limit` is given,
/// the first instruction of every repetition carries an issue-queue tag (the
/// paper's Extension encoding) advertising that window.
fn figure1_program(reps: i64, limit: Option<u8>) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("figure1");
    let main = b.procedure("main");
    {
        let p = b.proc_mut(main);
        let entry = p.block();
        let body = p.block();
        let exit = p.block();
        p.with_block(entry, |bb| {
            bb.li(int_reg(1), 1);
            bb.li(int_reg(2), 2);
            bb.li(int_reg(7), 5);
            bb.li(int_reg(9), 0);
            bb.jump(body);
        });
        p.with_block(body, |bb| {
            // a: add r1, 1, r1      b: add r2, 2, r2
            // c: mul r1, 5, r3      d: mul r2, 5, r4
            // e: add r3, r4, r5     f: add r2, r4, r6
            let mut a = Instruction::rri(sdiq::isa::Opcode::Addi, int_reg(1), int_reg(1), 1);
            if let Some(v) = limit {
                a.iq_hint = Some(v);
            }
            bb.push(a);
            bb.addi(int_reg(2), int_reg(2), 2);
            bb.mul(int_reg(3), int_reg(1), int_reg(7));
            bb.mul(int_reg(4), int_reg(2), int_reg(7));
            bb.add(int_reg(5), int_reg(3), int_reg(4));
            bb.add(int_reg(6), int_reg(2), int_reg(4));
            bb.addi(int_reg(9), int_reg(9), 1);
            bb.blt(int_reg(9), reps, body, exit);
        });
        p.with_block(exit, |bb| {
            bb.ret();
        });
        p.set_entry(entry);
    }
    b.finish(main).unwrap()
}

fn run(program: &Program, policy: ResizePolicy) -> sdiq::sim::SimResult {
    let trace = Executor::new(program).run(200_000).unwrap();
    Simulator::new(SimConfig::hpca2005(), program, &trace, policy)
        .run()
        .unwrap()
}

#[test]
fn a_two_entry_window_does_not_slow_the_single_block_down() {
    // Exactly the situation of Figure 1: the block executes once, with its
    // dependence structure forcing three issue groups (a,b → c,d → e,f). The
    // paper's point is that a two-entry queue executes it in the same number
    // of cycles as the 80-entry queue, with far fewer wakeups.
    let unlimited = run(&figure1_program(1, None), ResizePolicy::Fixed);
    let limited = run(&figure1_program(1, Some(2)), ResizePolicy::SoftwareHint);

    assert_eq!(unlimited.stats.committed, limited.stats.committed);
    assert!(
        limited.stats.cycles <= unlimited.stats.cycles + 3,
        "limited {} vs unlimited {} cycles",
        limited.stats.cycles,
        unlimited.stats.cycles
    );
    assert!(
        limited.stats.wakeup_comparisons_gated <= unlimited.stats.wakeup_comparisons_gated,
        "limited {} vs unlimited {} wakeups",
        limited.stats.wakeup_comparisons_gated,
        unlimited.stats.wakeup_comparisons_gated
    );
}

#[test]
fn limiting_the_repeated_block_saves_wakeups_and_occupancy() {
    // Repeating the block turns it into a loop with a carried dependence, so
    // timing is no longer identical; the power-side claim still holds: fewer
    // resident instructions, fewer operands woken.
    let reps = 500;
    let unlimited = run(&figure1_program(reps, None), ResizePolicy::Fixed);
    let limited = run(&figure1_program(reps, Some(4)), ResizePolicy::SoftwareHint);

    assert_eq!(unlimited.stats.committed, limited.stats.committed);
    assert!(
        limited.stats.wakeup_comparisons_gated < unlimited.stats.wakeup_comparisons_gated,
        "limited {} vs unlimited {}",
        limited.stats.wakeup_comparisons_gated,
        unlimited.stats.wakeup_comparisons_gated
    );
    assert!(limited.stats.avg_iq_occupancy() < unlimited.stats.avg_iq_occupancy());
}

#[test]
fn the_example_block_behaves_as_described_functionally() {
    // One repetition, no limiting: 6 real instructions in the block plus the
    // loop bookkeeping; all of them commit and the dependences resolve.
    let program = figure1_program(1, None);
    let trace = Executor::new(&program).run(1000).unwrap();
    assert!(!trace.hit_cap);
    // entry (4 + jump) + body (8) + ret.
    assert_eq!(trace.len(), 14);
}
