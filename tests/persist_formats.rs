//! Property tests pinning `persist::load_cells_any`'s format sniffing and
//! merge semantics over randomly mixed inputs.
//!
//! `--load` accepts whole-document save files and JSONL checkpoints
//! interchangeably, detected by the first line; a checkpoint may carry
//! duplicate keys (newest line wins — that is what healing a torn resume
//! relies on) and exactly one torn final line (the artifact of a killed
//! append). These properties generate random mixtures of all of that and
//! assert the loaded map is exactly the survivor set — same decoder as
//! the format-specific loaders, bit-identical reports, torn tail dropped,
//! newest duplicate kept.

use proptest::prelude::*;
use sdiq::core::persist::{
    checkpoint_line, load_cells, load_cells_any, load_checkpoint, save_cells,
};
use sdiq::core::{Experiment, RunReport, Technique};
use sdiq::workloads::Benchmark;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// A small pool of genuinely distinct reports to draw cells from.
/// Computed once — each is a full compile + simulate run. Note the two
/// pool entries sharing the key `shared|cell`: selecting both exercises
/// duplicate-key resolution.
fn pool() -> &'static Vec<(String, RunReport)> {
    static POOL: OnceLock<Vec<(String, RunReport)>> = OnceLock::new();
    POOL.get_or_init(|| {
        let experiment = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        vec![
            (
                "gzip|baseline|base|0".to_string(),
                experiment.run(Benchmark::Gzip, Technique::Baseline),
            ),
            (
                "gzip|noop|base|1".to_string(),
                experiment.run(Benchmark::Gzip, Technique::Noop),
            ),
            (
                "shared|cell".to_string(),
                experiment.run(Benchmark::Gzip, Technique::NonEmpty),
            ),
            (
                "shared|cell".to_string(),
                experiment.run(Benchmark::Gzip, Technique::Abella),
            ),
        ]
    })
}

/// The map a well-formed loader must produce from `lines` of pool
/// indices: later lines win on key collisions.
fn expected_of(selection: &[usize]) -> HashMap<String, RunReport> {
    let mut expected = HashMap::new();
    for &index in selection {
        let (key, report) = &pool()[index];
        expected.insert(key.clone(), report.clone());
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Save-format inputs: `save_cells` → `load_cells_any` is the
    /// identity on the deduplicated cell map, through the sniffing
    /// loader and the format-specific one alike.
    #[test]
    fn save_files_round_trip_through_the_sniffing_loader(
        selection in prop::collection::vec(0usize..4, 1..8),
    ) {
        // A save file's map is already deduplicated at build time (the
        // BTreeMap keeps the last insert), matching expected_of.
        let mut cells = BTreeMap::new();
        for &index in &selection {
            let (key, report) = &pool()[index];
            cells.insert(key.clone(), report.clone());
        }
        let text = save_cells(&cells);
        let loaded = load_cells_any(&text).expect("save file loads");
        prop_assert_eq!(&loaded, &expected_of(&selection));
        prop_assert_eq!(
            &loaded,
            &load_cells(&text).expect("save decoder agrees"),
        );
        // A save file must not be mistaken for a checkpoint.
        prop_assert!(load_checkpoint(&text).is_err());
    }

    /// Checkpoint-format inputs, including duplicate keys and an
    /// optionally torn final line: the sniffing loader picks the
    /// checkpoint decoder, keeps the newest line per key, and drops
    /// exactly the torn cell.
    #[test]
    fn checkpoints_survive_duplicates_and_one_torn_tail(
        selection in prop::collection::vec(0usize..4, 1..10),
        torn in prop_oneof![
            (0usize..1).prop_map(|_| false),
            (0usize..1).prop_map(|_| true),
        ],
        cut in 1usize..18,
    ) {
        let mut text = String::from("{\"format\":1,\"kind\":\"checkpoint\"}\n");
        for &index in &selection {
            let (key, report) = &pool()[index];
            text.push_str(&checkpoint_line(key, report));
            text.push('\n');
        }
        let survivors = if torn {
            // Tear the final append mid-line: every cell line is hundreds
            // of bytes, so cutting < 18 bytes plus the newline tears
            // exactly one line. The torn cell is lost; earlier
            // duplicates of its key resurface.
            text.truncate(text.len() - 1 - cut);
            &selection[..selection.len() - 1]
        } else {
            &selection[..]
        };
        let loaded = load_cells_any(&text).expect("checkpoint loads");
        prop_assert_eq!(&loaded, &expected_of(survivors));
        prop_assert_eq!(
            &loaded,
            &load_checkpoint(&text).expect("checkpoint decoder agrees"),
        );
        // A checkpoint must not be parseable as a save file.
        prop_assert!(load_cells(&text).is_err());
    }

    /// Merging mixed-format partials (the repeatable `--load` path:
    /// later files win key collisions) is order-dependent only where
    /// keys genuinely collide, and never depends on each file's format.
    #[test]
    fn mixed_format_merges_are_format_independent(
        first in prop::collection::vec(0usize..4, 1..5),
        second in prop::collection::vec(0usize..4, 1..5),
        first_is_checkpoint in prop_oneof![
            (0usize..1).prop_map(|_| false),
            (0usize..1).prop_map(|_| true),
        ],
    ) {
        let render = |selection: &[usize], as_checkpoint: bool| {
            if as_checkpoint {
                let mut text = String::from("{\"format\":1,\"kind\":\"checkpoint\"}\n");
                for &index in selection {
                    let (key, report) = &pool()[index];
                    text.push_str(&checkpoint_line(key, report));
                    text.push('\n');
                }
                text
            } else {
                let mut cells = BTreeMap::new();
                for &index in selection {
                    let (key, report) = &pool()[index];
                    cells.insert(key.clone(), report.clone());
                }
                save_cells(&cells)
            }
        };
        let mut merged = load_cells_any(&render(&first, first_is_checkpoint)).unwrap();
        merged.extend(load_cells_any(&render(&second, !first_is_checkpoint)).unwrap());
        let mut expected = expected_of(&first);
        expected.extend(expected_of(&second));
        prop_assert_eq!(merged, expected);
    }
}
