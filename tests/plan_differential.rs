//! Differential properties of the compiled execution-plan backend.
//!
//! The compiled backend ([`sdiq::sim::PlanSimulator`]) exists purely for
//! speed: it must be *bit-identical* to the interpreted pipeline
//! ([`sdiq::sim::Simulator`]) on every observable — cycles, every
//! [`ActivityStats`](sdiq::sim::ActivityStats) counter, the adaptive
//! controller's resize count. These properties drive randomly generated
//! `(program, SimConfig, policy)` cells through both backends and assert
//! exact equality of the full result, so any divergence a hand-written
//! differential test misses (odd widths, tiny queues, shallow ROBs,
//! hint-annotated programs on resized machines) is caught here.

use proptest::prelude::*;
use sdiq::compiler::{CompilerPass, PassConfig};
use sdiq::isa::builder::ProgramBuilder;
use sdiq::isa::reg::int_reg;
use sdiq::isa::{Executor, Program};
use sdiq::sim::{AdaptiveConfig, ExecPlan, PlanSimulator, ResizePolicy, SimConfig, Simulator};

/// Strategy: a single-loop program with a configurable dependence shape —
/// loads, chained adds and a live loop counter, so renaming, wakeup and
/// the D-cache all see traffic.
fn arb_loop_program() -> impl Strategy<Value = Program> {
    (2i64..30i64, 1usize..5usize, 1usize..4usize).prop_map(|(trips, chains, chain_len)| {
        let mut b = ProgramBuilder::new();
        b.name("plan-prop-loop");
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 7);
                bb.li(int_reg(20), 0x3000_0000);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                bb.load(int_reg(10), int_reg(20), 0);
                for c in 0..chains {
                    let reg = int_reg(3 + c as u8);
                    bb.add(reg, reg, int_reg(10));
                    for k in 1..chain_len {
                        bb.addi(reg, reg, k as i64);
                    }
                }
                bb.addi(int_reg(20), int_reg(20), 8);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), trips, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).expect("generated loop program is valid")
    })
}

/// Strategy: a machine shape. Everything replay-relevant varies — width,
/// window sizes, queue geometry, front-end depth, memory latency — around
/// the Table 1 base, within the ranges the rest of the repo exercises.
fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        (0usize..3, 0usize..3, 0usize..3),
        (1u32..4u32, 0usize..3, 0usize..2),
    )
        .prop_map(|((width, rob, iq), (decode_stages, fetch_queue, memory))| {
            let mut config = SimConfig::hpca2005();
            config.widths.pipeline_width = [2, 4, 8][width];
            config.widths.rob_capacity = [32, 64, 128][rob];
            let iq_entries = [40, 64, 80][iq];
            config.widths.iq_capacity = iq_entries;
            config.iq.entries = iq_entries;
            config.decode_stages = decode_stages;
            config.fetch_queue_entries = [8, 16, 32][fetch_queue];
            config.memory_latency = [50, 100][memory];
            config
        })
}

fn arb_policy() -> impl Strategy<Value = ResizePolicy> {
    (0usize..3).prop_map(|index| {
        [
            ResizePolicy::Fixed,
            ResizePolicy::SoftwareHint,
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        ][index]
    })
}

proptest! {
    // Each case runs two whole pipelines; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: for any (program, config, policy) cell,
    /// replaying the compiled plan produces the exact `SimResult` of the
    /// interpreted pipeline — every counter, not a summary.
    #[test]
    fn compiled_plan_is_bit_identical_to_the_interpreter(
        program in arb_loop_program(),
        config in arb_config(),
        policy in arb_policy(),
    ) {
        // The software-hint policy is only meaningful on an annotated
        // program — mirror the production pairing (the other policies run
        // the raw program, exactly as the experiment runner does).
        let program = if policy.uses_hints() {
            CompilerPass::new(PassConfig::noop_insertion()).run(&program).program
        } else {
            program
        };
        let trace = Executor::new(&program).run(20_000).unwrap();

        let interpreted = Simulator::new(config, &program, &trace, policy)
            .run()
            .unwrap();
        let plan = ExecPlan::build(config, &program, &trace);
        let compiled = PlanSimulator::new(&plan, policy).run().unwrap();

        prop_assert_eq!(&compiled, &interpreted);
    }

    /// The two registry-landed techniques (`way-memo`, `lowen-isa`) must be
    /// bit-identical across `--backend compiled|interpreted`, exactly like
    /// the six paper techniques. `way-memo` runs the baseline pipeline
    /// shape and prices savings at report time; `lowen-isa` additionally
    /// tags loop blocks, whose `committed_low_energy` count is baked into
    /// the plan and recounted at interpreted commit — the full-result
    /// equality below covers that counter too.
    #[test]
    fn new_techniques_are_bit_identical_across_backends(
        program in arb_loop_program(),
        config in arb_config(),
    ) {
        use sdiq::core::Technique;
        for technique in [Technique::WayMemo, Technique::LowenIsa] {
            let prepared = match technique.pass_config_for(config.widths, config.fu_counts) {
                Some(pass_config) => CompilerPass::new(pass_config).run(&program).program,
                None => program.clone(),
            };
            let trace = Executor::new(&prepared).run(20_000).unwrap();
            let policy = technique.resize_policy();

            let interpreted = Simulator::new(config, &prepared, &trace, policy)
                .run()
                .unwrap();
            let plan = ExecPlan::build(config, &prepared, &trace);
            let compiled = PlanSimulator::new(&plan, policy).run().unwrap();

            prop_assert_eq!(&compiled, &interpreted);
            if technique == Technique::LowenIsa {
                // Loop programs always have marked blocks: the counter the
                // equality just compared is live, not vacuously zero.
                prop_assert!(interpreted.stats.committed_low_energy > 0);
            } else {
                prop_assert_eq!(interpreted.stats.committed_low_energy, 0);
            }
        }
    }

    /// One plan is shared across every policy of a cell shape (that is
    /// what makes the artifact cache effective), so building it once and
    /// replaying under each policy must match per-policy interpretation.
    #[test]
    fn one_plan_serves_every_policy(
        program in arb_loop_program(),
        config in arb_config(),
    ) {
        let trace = Executor::new(&program).run(20_000).unwrap();
        let plan = ExecPlan::build(config, &program, &trace);
        for policy in [
            ResizePolicy::Fixed,
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        ] {
            let interpreted = Simulator::new(config, &program, &trace, policy)
                .run()
                .unwrap();
            let compiled = PlanSimulator::new(&plan, policy).run().unwrap();
            prop_assert_eq!(&compiled, &interpreted);
        }
    }
}
