//! Property-based tests over the core data structures and analyses.
//!
//! These check invariants that must hold for *any* program the generator or
//! a user could construct, not just the hand-written cases in the unit
//! tests:
//!
//! * the functional executor is deterministic and respects its instruction
//!   cap,
//! * the timing simulator commits exactly the committed trace, under every
//!   resize policy,
//! * the pseudo-issue-queue analysis never needs more entries than the block
//!   has instructions, and narrower machines never need more entries,
//! * the loop analysis never exceeds the queue capacity and the compiler
//!   pass always emits structurally valid programs whose hints are within
//!   range.

use proptest::prelude::*;
use sdiq::compiler::{analyse_block, analyse_loop_body, CompilerPass, PassConfig};
use sdiq::isa::builder::ProgramBuilder;
use sdiq::isa::reg::int_reg;
use sdiq::isa::{Executor, FuCounts, Instruction, Opcode, Program};
use sdiq::sim::{ResizePolicy, SimConfig, Simulator};

/// Strategy: a random straight-line instruction (ALU / load / store) using a
/// handful of registers so that dependence chains appear frequently.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let reg = || (1u8..12u8).prop_map(int_reg);
    prop_oneof![
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instruction::rrr(Opcode::Add, d, a, b)),
        (reg(), reg(), -8i64..8i64).prop_map(|(d, a, i)| Instruction::rri(Opcode::Addi, d, a, i)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instruction::rrr(Opcode::Mul, d, a, b)),
        (reg(), reg(), 0i64..64i64).prop_map(|(d, a, o)| Instruction::load(Opcode::Load, d, a, o)),
        (reg(), reg(), 0i64..64i64).prop_map(|(v, a, o)| Instruction::store(
            Opcode::Store,
            v,
            a,
            o
        )),
        (reg(), -100i64..100i64).prop_map(|(d, i)| Instruction::ri(Opcode::Li, d, i)),
    ]
}

/// Strategy: a whole single-loop program parameterised by trip count, body
/// size and ILP shape. Always terminates.
fn arb_loop_program() -> impl Strategy<Value = Program> {
    (2i64..40i64, 1usize..6usize, 1usize..5usize).prop_map(|(trips, chains, chain_len)| {
        let mut b = ProgramBuilder::new();
        b.name("prop-loop");
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 7);
                bb.li(int_reg(20), 0x3000_0000);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                bb.load(int_reg(10), int_reg(20), 0);
                for c in 0..chains {
                    let reg = int_reg(3 + c as u8);
                    bb.add(reg, reg, int_reg(10));
                    for k in 1..chain_len {
                        bb.addi(reg, reg, k as i64);
                    }
                }
                bb.addi(int_reg(20), int_reg(20), 8);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), trips, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).expect("generated loop program is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn executor_is_deterministic_and_respects_the_cap(
        program in arb_loop_program(),
        cap in 16u64..5000u64,
    ) {
        let a = Executor::new(&program).run(cap).unwrap();
        let b = Executor::new(&program).run(cap).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() as u64 <= cap);
        if !a.hit_cap {
            // Terminated: the last committed instruction is the return.
            let last = program.instruction(a.committed.last().unwrap().loc);
            prop_assert_eq!(last.opcode, Opcode::Return);
        }
    }

    #[test]
    fn block_analysis_is_bounded_and_deterministic(
        block in prop::collection::vec(arb_instruction(), 1..24),
    ) {
        // The raw greedy schedule exhibits Graham-style anomalies (a
        // narrower width can need *more* entries; see the concrete
        // counterexample regression test in `sdiq-compiler`), but
        // `analyse_block` reports the monotone envelope over all wider
        // machines, so the requirement handed to the annotator never grows
        // as the width shrinks. That reinstates the `narrow <= wide`
        // property this suite originally (wrongly, for the raw schedule)
        // asserted.
        let fu = FuCounts::hpca2005();
        let wide = analyse_block(&block, 8, &fu);
        let narrow = analyse_block(&block, 2, &fu);
        prop_assert!(
            narrow.entries <= wide.entries,
            "monotone envelope violated: narrow {} > wide {}",
            narrow.entries,
            wide.entries
        );
        for req in [&wide, &narrow] {
            prop_assert!(req.entries >= 1);
            prop_assert!(req.entries as usize <= block.len());
            prop_assert_eq!(req.instructions as usize, block.len());
        }
        // Each cycle issues at most `width` instructions, so the drain time
        // is bounded below by the dispatch-bandwidth bound.
        prop_assert!(narrow.cycles as usize >= block.len().div_ceil(2));
        prop_assert!(wide.cycles as usize >= block.len().div_ceil(8));
        // The analysis is deterministic.
        prop_assert_eq!(analyse_block(&block, 8, &fu), wide);
        prop_assert_eq!(analyse_block(&block, 2, &fu), narrow);
    }

    #[test]
    fn loop_analysis_never_exceeds_capacity(
        body in prop::collection::vec(arb_instruction(), 1..24),
        capacity in 8u32..128u32,
    ) {
        let req = analyse_loop_body(&body, capacity);
        if let Some(entries) = req.entries {
            prop_assert!(entries >= 1);
            prop_assert!(entries <= capacity);
        }
        prop_assert_eq!(req.iteration_offsets.len() as u32, req.body_len);
    }

    #[test]
    fn compiler_pass_emits_valid_programs_with_hints_in_range(
        program in arb_loop_program(),
    ) {
        for config in [PassConfig::noop_insertion(), PassConfig::tagging(), PassConfig::improved()] {
            let compiled = CompilerPass::new(config).run(&program);
            prop_assert!(compiled.program.validate().is_ok());
            let capacity = config.widths.iq_capacity as u32;
            for &v in compiled.annotations.block_entries.values() {
                prop_assert!(v >= 1 && v <= capacity);
            }
            for &v in compiled.annotations.loop_preheader_entries.values() {
                prop_assert!(v >= 1 && v <= capacity);
            }
            // The rewrite never loses real instructions.
            prop_assert_eq!(
                compiled.program.static_instruction_count() - compiled.program.hint_noop_count(),
                program.static_instruction_count()
            );
        }
    }
}

proptest! {
    // The simulator property runs whole pipelines; keep the case count low so
    // the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_commits_the_whole_trace_under_every_policy(
        program in arb_loop_program(),
    ) {
        let trace = Executor::new(&program).run(20_000).unwrap();
        for policy in [
            ResizePolicy::Fixed,
            ResizePolicy::SoftwareHint,
            ResizePolicy::Adaptive(sdiq::sim::AdaptiveConfig::iqrob64()),
        ] {
            let result = Simulator::new(SimConfig::hpca2005(), &program, &trace, policy)
                .run()
                .unwrap();
            let hints: u64 = trace
                .committed
                .iter()
                .filter(|d| program.instruction(d.loc).is_hint_noop())
                .count() as u64;
            prop_assert_eq!(result.stats.committed + result.stats.committed_hints,
                trace.len() as u64);
            prop_assert_eq!(result.stats.committed_hints, hints);
            prop_assert!(result.stats.ipc() > 0.0);
            prop_assert!(result.stats.avg_iq_occupancy() <= 80.0);
        }
    }
}
