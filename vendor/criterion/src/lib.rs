//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the Criterion API the `sdiq-bench` benches use:
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkGroup::throughput`] and
//! [`BenchmarkGroup::bench_with_input`], and [`Bencher::iter`]. Measurement
//! is deliberately simple — a fixed number of timed samples with mean / min
//! reporting (plus elements-per-second when a throughput is set) — which is
//! enough to track the order-of-magnitude perf trajectory offline.
//!
//! Each sample runs the closure once; passing `--test` (as `cargo test`
//! does for harness-less targets) reduces the run to a single smoke sample
//! per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Declared work per iteration, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. instructions) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and parameter display value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let value = routine();
            self.elapsed.push(start.elapsed());
            drop(value);
        }
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            smoke_test,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    fn effective_samples(&self) -> usize {
        if self.smoke_test {
            1
        } else {
            self.sample_size
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, self.effective_samples(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.throughput,
            self.criterion.effective_samples(),
            f,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.throughput,
            self.criterion.effective_samples(),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples,
        elapsed: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if bencher.elapsed.is_empty() {
        println!("bench {name:<55} (no samples)");
        return;
    }
    let total: Duration = bencher.elapsed.iter().sum();
    let mean = total / bencher.elapsed.len() as u32;
    let min = bencher.elapsed.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<55} mean {mean:>12.3?}  min {min:>12.3?}{rate}  ({} samples)",
        bencher.elapsed.len()
    );
}

/// Declares a benchmark group function (block and list forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut criterion = Criterion::default().sample_size(2);
        let mut runs = 0usize;
        criterion.bench_function("unit/noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        {
            let mut group = criterion.benchmark_group("group");
            group.throughput(Throughput::Elements(10));
            group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &v| {
                b.iter(|| {
                    runs += 1;
                    std::hint::black_box(v * 2)
                })
            });
            group.finish();
        }
        assert!(runs >= 1);
    }
}
