//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses:
//!
//! * [`strategy::Strategy`] with [`strategy::Strategy::prop_map`],
//! * integer / float [`std::ops::Range`] strategies, tuple strategies,
//! * [`collection::vec`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros, and
//! * [`test_runner::Config`] (`ProptestConfig`) with `with_cases`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! regression files: cases are generated from a deterministic per-test seed,
//! so a failing case reproduces on every run. That is sufficient for the
//! invariant-style properties this repository asserts.

pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG used to drive strategies (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from a test's name so that every test gets
        /// an independent, reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, bound)`.
        pub fn next_index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "next_index: empty bound");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Stand-in for `proptest::strategy::Strategy`: a recipe for generating
    /// random values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given alternatives.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.next_index(self.arms.len());
            self.arms[pick].generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with uniformly chosen length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Stand-in for `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            // `vec()` asserts start < end, so the span is non-empty and
            // `next_index` yields a length in `[start, end)`.
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.next_index(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Stand-in for the `prop` module re-export in proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)*)
            ));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return Err(format!(
                "assertion failed at {}:{}: `{} == {}`\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(value in 3i64..9i64, size in 1usize..4usize) {
            prop_assert!((3..9).contains(&value));
            prop_assert!((1..4).contains(&size));
        }

        #[test]
        fn mapped_and_oneof_strategies_compose(
            items in prop::collection::vec(
                prop_oneof![
                    (0u8..4u8).prop_map(|v| v as u32),
                    (10u8..14u8).prop_map(|v| v as u32),
                ],
                1..8,
            ),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 8);
            for item in items {
                prop_assert!(item < 4 || (10u32..14u32).contains(&item));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0i32..5, 0i32..5)) {
            prop_assert_eq!(pair.0 + pair.1, pair.1 + pair.0);
        }
    }
}
