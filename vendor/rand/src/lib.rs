//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides the subset the workload generator uses: a deterministic
//! [`rngs::SmallRng`] seeded with [`SeedableRng::seed_from_u64`] and the
//! [`Rng::gen_range`] / [`Rng::gen_bool`] sampling methods. The generator
//! only relies on determinism-for-a-seed, not on any particular stream, so
//! the splitmix64 core here is a faithful substitute.

use std::ops::Range;

/// Core uniform-bit source (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform bits into [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic RNG (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
