//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize` / `Deserialize` on its public data
//! types to document that they are serialization-ready, but never actually
//! serializes anything (figures are rendered as text, benchmark artifacts
//! are hand-written JSON). The traits are therefore empty markers and the
//! derives emit empty impls. Swapping in the real `serde` is source
//! compatible.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
