//! No-op `Serialize` / `Deserialize` derives for the offline `serde` shim.
//!
//! Emits empty marker-trait impls. Supports plain (non-generic) structs and
//! enums, which is all the workspace uses; deriving on a generic type is a
//! compile error with a clear message rather than silently-wrong output.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following `struct` / `enum`, skipping
/// attributes, doc comments and visibility qualifiers.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        match token {
            // `#[...]` attribute: skip the `#` and the following group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => panic!("serde shim: expected type name, found {other:?}"),
                    };
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            panic!(
                                "serde shim: deriving on generic type `{name}` is not supported \
                                 (vendor/serde_derive implements only what the workspace needs)"
                            );
                        }
                    }
                    return name;
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde shim: no struct/enum found in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
